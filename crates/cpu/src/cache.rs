//! Set-associative cache hierarchy simulator.
//!
//! Models the paper's testbed (§V-A): per-core 32 KB 8-way L1D and 256 KB
//! 8-way L2, plus a 35 MB 16-way L3 shared by all cores. Latencies are in
//! core cycles. True LRU within each set.

/// Sentinel tag for an unoccupied way.
const EMPTY_TAG: u64 = u64::MAX;

/// One set-associative cache level.
///
/// Ways are stored in one flat `(tag, last_used_tick)` array — a single
/// allocation with the whole set in adjacent memory — instead of one
/// heap vector per set. The simulated L3 alone has 32 k sets, so this
/// removes tens of thousands of allocations per program run and the
/// per-access pointer chase.
#[derive(Clone, Debug)]
pub struct Cache {
    ways_flat: Vec<(u64, u64)>, // sets × ways: (tag, last_used_tick)
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    tag_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines (both powers of two).
    ///
    /// # Panics
    /// Panics if the geometry is not a power-of-two or is inconsistent.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Cache {
        assert!(line_bytes.is_power_of_two() && size_bytes.is_multiple_of(ways * line_bytes));
        let n_sets = size_bytes / (ways * line_bytes);
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            ways_flat: vec![(EMPTY_TAG, 0); n_sets * ways],
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            tag_shift: n_sets.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Access `addr`; returns true on hit. Misses allocate (LRU evict).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.tag_shift;
        let base = set * self.ways;
        let entries = &mut self.ways_flat[base..base + self.ways];
        let mut lru = 0;
        let mut lru_used = u64::MAX;
        for (i, e) in entries.iter_mut().enumerate() {
            if e.0 == tag {
                e.1 = self.tick;
                self.hits += 1;
                return true;
            }
            // Empty ways have tick 0 and lose every LRU comparison,
            // so they are filled before anything is evicted.
            if e.1 < lru_used {
                lru_used = e.1;
                lru = i;
            }
        }
        self.misses += 1;
        entries[lru] = (tag, self.tick);
        false
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when never accessed).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

/// Latency parameters of the hierarchy (cycles).
#[derive(Clone, Copy, Debug)]
pub struct CacheLatencies {
    /// L1D hit.
    pub l1: u32,
    /// L2 hit.
    pub l2: u32,
    /// L3 hit.
    pub l3: u32,
    /// DRAM.
    pub mem: u32,
}

impl Default for CacheLatencies {
    fn default() -> CacheLatencies {
        CacheLatencies { l1: 4, l2: 12, l3: 36, mem: 200 }
    }
}

/// The shared last-level cache (one per machine).
#[derive(Clone, Debug)]
pub struct SharedL3 {
    cache: Cache,
}

impl SharedL3 {
    /// 35 MB, 16-way, 64-byte lines — the paper's Haswell L3. The size is
    /// rounded to a power-of-two set count (32 MB effective).
    pub fn haswell() -> SharedL3 {
        SharedL3 { cache: Cache::new(32 * 1024 * 1024, 16, 64) }
    }

    /// Access; true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.cache.access(addr)
    }

    /// Miss ratio observed at L3.
    pub fn miss_ratio(&self) -> f64 {
        self.cache.miss_ratio()
    }
}

/// Per-core L1D + L2 with a handle-free interface: the caller passes the
/// shared L3 on each access.
#[derive(Clone, Debug)]
pub struct CoreCaches {
    l1: Cache,
    l2: Cache,
    lat: CacheLatencies,
}

impl CoreCaches {
    /// Haswell-like core caches: 32 KB/8-way L1D, 256 KB/8-way L2.
    pub fn haswell() -> CoreCaches {
        CoreCaches {
            l1: Cache::new(32 * 1024, 8, 64),
            l2: Cache::new(256 * 1024, 8, 64),
            lat: CacheLatencies::default(),
        }
    }

    /// Access `addr`, returning the load-to-use latency in cycles.
    pub fn access(&mut self, addr: u64, l3: &mut SharedL3) -> u32 {
        if self.l1.access(addr) {
            return self.lat.l1;
        }
        if self.l2.access(addr) {
            return self.lat.l2;
        }
        if l3.access(addr) {
            return self.lat.l3;
        }
        self.lat.mem
    }

    /// L1D miss ratio (Table II's `L1-miss` column).
    pub fn l1_miss_ratio(&self) -> f64 {
        self.l1.miss_ratio()
    }

    /// L1 accesses (≈ memory references).
    pub fn l1_accesses(&self) -> u64 {
        self.l1.accesses()
    }

    /// L1 misses.
    pub fn l1_misses(&self) -> u64 {
        self.l1.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        assert!(!c.access(0x1000));
        for _ in 0..10 {
            assert!(c.access(0x1000));
        }
        assert_eq!(c.misses(), 1);
        assert_eq!(c.hits(), 10);
    }

    #[test]
    fn same_line_different_bytes_hit() {
        let mut c = Cache::new(32 * 1024, 8, 64);
        c.access(0x1000);
        assert!(c.access(0x103F)); // same 64B line
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn lru_eviction_in_one_set() {
        // Direct a stream of 9 distinct lines into the same set of an
        // 8-way cache: the first line must be evicted.
        let mut c = Cache::new(32 * 1024, 8, 64);
        let n_sets = 32 * 1024 / (8 * 64); // 64 sets
        let stride = (n_sets * 64) as u64; // same set, new tag
        for i in 0..9u64 {
            c.access(i * stride);
        }
        // Line 0 was LRU and must now miss.
        assert!(!c.access(0));
        // Line 8 is still resident.
        assert!(c.access(8 * stride));
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = Cache::new(1024, 2, 64); // tiny cache: 16 lines
        let mut misses0 = 0;
        for round in 0..3 {
            for i in 0..64u64 {
                let hit = c.access(i * 64);
                if round == 0 && !hit {
                    misses0 += 1;
                }
            }
        }
        assert_eq!(misses0, 64);
        assert!(c.miss_ratio() > 0.9, "LRU + sequential sweep over 4x capacity must thrash");
    }

    #[test]
    fn hierarchy_latencies_ordered() {
        let mut l3 = SharedL3::haswell();
        let mut cc = CoreCaches::haswell();
        let first = cc.access(0x10000, &mut l3);
        let second = cc.access(0x10000, &mut l3);
        assert_eq!(first, CacheLatencies::default().mem);
        assert_eq!(second, CacheLatencies::default().l1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut l3 = SharedL3::haswell();
        let mut cc = CoreCaches::haswell();
        // Touch a line, then sweep 64 KB (evicts it from 32 KB L1 but not
        // from 256 KB L2), then touch it again.
        cc.access(0, &mut l3);
        for i in 0..1024u64 {
            cc.access(0x100000 + i * 64, &mut l3);
        }
        let lat = cc.access(0, &mut l3);
        assert_eq!(lat, CacheLatencies::default().l2);
    }

    #[test]
    fn shared_l3_is_shared() {
        let mut l3 = SharedL3::haswell();
        let mut core_a = CoreCaches::haswell();
        let mut core_b = CoreCaches::haswell();
        core_a.access(0x5000, &mut l3);
        // Core B misses its private caches but hits the line Core A
        // brought into the shared L3.
        let lat = core_b.access(0x5000, &mut l3);
        assert_eq!(lat, CacheLatencies::default().l3);
    }
}
