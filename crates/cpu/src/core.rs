//! Out-of-order core timing model.
//!
//! A per-instruction O(1) dataflow scoreboard approximating a Haswell-class
//! out-of-order engine: instructions are fetched 4/cycle in program order,
//! issue when their operands are ready and a capable execution port is
//! free, and complete after their class latency. Cycle count = the largest
//! completion time seen; ILP = retired instructions / cycles — directly
//! comparable to the paper's Table III.

use crate::branch::BranchPredictor;
use crate::cache::{CoreCaches, SharedL3};
use crate::cost::InstClass;

/// Tunable core parameters.
#[derive(Clone, Copy, Debug)]
pub struct CoreConfig {
    /// Instructions fetched/renamed per cycle.
    pub fetch_width: u32,
    /// Refetch penalty after a branch mispredict (cycles).
    pub mispredict_penalty: u32,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig { fetch_width: 4, mispredict_penalty: 15 }
    }
}

/// Perf-stat style counters (the raw events behind Tables II and III).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Retired instructions (including legalization expansions).
    pub instrs: u64,
    /// Retired AVX instructions.
    pub avx_instrs: u64,
    /// Scalar + vector loads (incl. gathers).
    pub loads: u64,
    /// Scalar + vector stores (incl. scatters).
    pub stores: u64,
    /// Branches executed.
    pub branches: u64,
    /// Branch mispredictions.
    pub branch_misses: u64,
    /// Memory references (cache accesses).
    pub mem_refs: u64,
    /// L1D misses.
    pub l1_misses: u64,
    /// ELZAR runtime corrections (recovered faults) observed on this core.
    pub corrections: u64,
}

impl Counters {
    /// Merge another counter set into this one.
    pub fn add(&mut self, o: &Counters) {
        self.instrs += o.instrs;
        self.avx_instrs += o.avx_instrs;
        self.loads += o.loads;
        self.stores += o.stores;
        self.branches += o.branches;
        self.branch_misses += o.branch_misses;
        self.mem_refs += o.mem_refs;
        self.l1_misses += o.l1_misses;
        self.corrections += o.corrections;
    }
}

/// One simulated core (one hardware context per software thread).
#[derive(Clone, Debug)]
pub struct Core {
    cfg: CoreConfig,
    caches: CoreCaches,
    pred: BranchPredictor,
    port_free: [u64; 8],
    fetch_base_cycle: u64,
    fetch_base_seq: u64,
    /// `log2(fetch_width)` — the per-instruction fetch-cycle divide is
    /// a shift (fetch width must be a power of two).
    fetch_shift: u32,
    seq: u64,
    cycles: u64,
    counters: Counters,
}

impl Default for Core {
    fn default() -> Core {
        Core::new()
    }
}

impl Core {
    /// A Haswell-like core.
    pub fn new() -> Core {
        let cfg = CoreConfig::default();
        assert!(cfg.fetch_width.is_power_of_two(), "fetch width must be a power of two");
        Core {
            fetch_shift: cfg.fetch_width.trailing_zeros(),
            cfg,
            caches: CoreCaches::haswell(),
            pred: BranchPredictor::haswell(),
            port_free: [0; 8],
            fetch_base_cycle: 0,
            fetch_base_seq: 0,
            seq: 0,
            cycles: 0,
            counters: Counters::default(),
        }
    }

    #[inline]
    fn fetch_cycle(&self) -> u64 {
        self.fetch_base_cycle + ((self.seq - self.fetch_base_seq) >> self.fetch_shift)
    }

    #[inline]
    fn issue(&mut self, class: InstClass, ops: &[u64], mem_latency: u32) -> u64 {
        self.issue_cost(class.cost(), class.is_avx(), ops, mem_latency)
    }

    #[inline]
    fn issue_cost(&mut self, cost: crate::cost::Cost, avx: bool, ops: &[u64], mem_latency: u32) -> u64 {
        let fetch = self.fetch_cycle();
        self.seq += 1 + u64::from(cost.extra_instrs);
        let op_ready = ops.iter().copied().max().unwrap_or(0);
        // Pick the soonest-free capable port, visiting set bits only.
        let mut best_port = usize::MAX;
        let mut best_free = u64::MAX;
        let mut mask = cost.ports;
        while mask != 0 {
            let p = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            if self.port_free[p] < best_free {
                best_free = self.port_free[p];
                best_port = p;
            }
        }
        debug_assert!(best_port != usize::MAX, "class without ports");
        let issue_at = fetch.max(op_ready).max(best_free);
        self.port_free[best_port] = issue_at + u64::from(cost.occupy);
        let done = issue_at + u64::from(cost.latency) + u64::from(mem_latency);
        if done > self.cycles {
            self.cycles = done;
        }
        // Bookkeeping.
        self.counters.instrs += 1 + u64::from(cost.extra_instrs);
        if avx {
            self.counters.avx_instrs += 1 + u64::from(cost.extra_instrs);
        }
        done
    }

    /// Retire a non-memory, non-branch instruction whose operands become
    /// ready at the given cycles. Returns the cycle its result is ready.
    #[inline]
    pub fn retire(&mut self, class: InstClass, ops: &[u64]) -> u64 {
        debug_assert!(!class.is_mem() && class != InstClass::Branch);
        self.issue(class, ops, 0)
    }

    /// Retire an unconditional jump (no prediction bookkeeping).
    pub fn retire_jump(&mut self) -> u64 {
        self.counters.branches += 1;
        self.issue(InstClass::Branch, &[], 0)
    }

    /// Retire a memory instruction touching `addr`; the added latency
    /// comes from the cache hierarchy.
    #[inline]
    pub fn retire_mem(&mut self, class: InstClass, ops: &[u64], addr: u64, l3: &mut SharedL3) -> u64 {
        let lat = self.caches.access(addr, l3);
        self.counters.mem_refs += 1;
        match class {
            InstClass::Load | InstClass::VecLoad | InstClass::Gather | InstClass::Atomic => {
                self.counters.loads += 1;
            }
            InstClass::Store | InstClass::VecStore | InstClass::Scatter => {
                self.counters.stores += 1;
            }
            _ => {}
        }
        // Stores complete into the store buffer: the data-cache latency is
        // hidden, only port pressure counts.
        let mem_lat = match class {
            InstClass::Store | InstClass::VecStore | InstClass::Scatter => 0,
            _ => lat,
        };
        self.issue(class, ops, mem_lat)
    }

    /// Retire a non-memory, non-branch instruction from a precomputed
    /// `(cost, avx)` pair — the trace engine's timing bridge. Identical
    /// accounting to [`Core::retire`] when the pair came from the same
    /// [`InstClass`].
    #[inline]
    pub fn retire_precosted(&mut self, cost: crate::cost::Cost, avx: bool, ops: &[u64]) -> u64 {
        self.issue_cost(cost, avx, ops, 0)
    }

    /// Retire a memory instruction from a precomputed `(cost, avx)` pair
    /// plus a `store` flag. Identical accounting to [`Core::retire_mem`]:
    /// the cache is always accessed first, and stores complete into the
    /// store buffer (data-cache latency hidden, only port pressure
    /// counts). Traces never carry gathers, scatters or atomics, so the
    /// flag fully determines the load/store counter split.
    #[inline]
    pub fn retire_mem_precosted(
        &mut self,
        cost: crate::cost::Cost,
        avx: bool,
        store: bool,
        ops: &[u64],
        addr: u64,
        l3: &mut SharedL3,
    ) -> u64 {
        let lat = self.caches.access(addr, l3);
        self.counters.mem_refs += 1;
        let mem_lat = if store {
            self.counters.stores += 1;
            0
        } else {
            self.counters.loads += 1;
            lat
        };
        self.issue_cost(cost, avx, ops, mem_lat)
    }

    /// Retire a branch instruction at `site` (a stable static id), with
    /// the actual `taken` outcome. Returns the cycle the branch resolves.
    pub fn retire_branch(&mut self, site: u64, taken: bool, ops: &[u64]) -> u64 {
        self.counters.branches += 1;
        let done = self.issue(InstClass::Branch, ops, 0);
        let correct = self.pred.predict_and_update(site, taken);
        if !correct {
            self.counters.branch_misses += 1;
            // Redirect fetch: younger instructions cannot fetch until the
            // branch resolves plus the front-end refill penalty.
            self.fetch_base_cycle = done + u64::from(self.cfg.mispredict_penalty);
            self.fetch_base_seq = self.seq;
        }
        done
    }

    /// Record an ELZAR runtime correction (majority-vote recovery fired).
    pub fn record_correction(&mut self) {
        self.counters.corrections += 1;
    }

    /// Synchronize this core's clock forward to `cycle` (used by the VM's
    /// virtual-time model at lock acquisitions, joins and atomic
    /// serialization points). Also stalls the front end until then.
    pub fn advance_to(&mut self, cycle: u64) {
        if cycle > self.cycles {
            self.cycles = cycle;
        }
        if cycle > self.fetch_base_cycle {
            self.fetch_base_cycle = cycle;
            self.fetch_base_seq = self.seq;
        }
        for p in &mut self.port_free {
            *p = (*p).max(cycle);
        }
    }

    /// Total cycles elapsed on this core.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Counter snapshot (L1 statistics folded in).
    pub fn counters(&self) -> Counters {
        let mut c = self.counters;
        c.l1_misses = self.caches.l1_misses();
        c
    }

    /// Instructions / cycles.
    pub fn ilp(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.counters.instrs as f64 / self.cycles as f64
        }
    }

    /// L1D miss ratio.
    pub fn l1_miss_ratio(&self) -> f64 {
        self.caches.l1_miss_ratio()
    }

    /// Branch miss ratio.
    pub fn branch_miss_ratio(&self) -> f64 {
        self.pred.miss_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_scalar_ops_reach_wide_ilp() {
        let mut c = Core::new();
        for _ in 0..10_000 {
            c.retire(InstClass::ScalarAlu, &[]);
        }
        let ilp = c.ilp();
        assert!(ilp > 3.5, "independent ALU stream should sustain ~4 IPC, got {ilp}");
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut c = Core::new();
        let mut ready = 0;
        for _ in 0..10_000 {
            ready = c.retire(InstClass::ScalarAlu, &[ready]);
        }
        let ilp = c.ilp();
        assert!(ilp < 1.1, "1-latency dependent chain is ~1 IPC, got {ilp}");
    }

    #[test]
    fn vector_stream_capped_by_three_ports() {
        let mut c = Core::new();
        for _ in 0..10_000 {
            c.retire(InstClass::VecAlu, &[]);
        }
        let ilp = c.ilp();
        assert!(ilp > 2.5 && ilp < 3.3, "AVX ALU is served by 3 ports, got {ilp}");
    }

    #[test]
    fn wrapped_load_costs_about_twice_a_plain_load() {
        // Table IV, loads row: extract+load+broadcast ≈ 2× a plain load.
        // Use dependent address chains as in the paper's microbenchmark.
        let mut l3 = SharedL3::haswell();
        let mut native = Core::new();
        let mut addr_ready = 0;
        for i in 0..20_000u64 {
            addr_ready = native.retire_mem(InstClass::Load, &[addr_ready], (i % 64) * 64, &mut l3);
        }
        let mut l3b = SharedL3::haswell();
        let mut wrapped = Core::new();
        let mut ready = 0;
        for i in 0..20_000u64 {
            let ex = wrapped.retire(InstClass::Extract, &[ready]);
            let ld = wrapped.retire_mem(InstClass::Load, &[ex], (i % 64) * 64, &mut l3b);
            ready = wrapped.retire(InstClass::Broadcast, &[ld]);
        }
        let ratio = wrapped.cycles() as f64 / native.cycles() as f64;
        assert!(ratio > 1.6 && ratio < 3.0, "wrapped/native load ratio {ratio}");
    }

    #[test]
    fn store_port_is_the_bottleneck_for_both_variants() {
        // Table IV, stores row: the single store port dominates, so the
        // AVX-wrapped store stream is barely slower (~1.0–1.15×).
        let mut l3 = SharedL3::haswell();
        let mut native = Core::new();
        for i in 0..20_000u64 {
            native.retire_mem(InstClass::Store, &[], (i % 64) * 64, &mut l3);
        }
        let mut l3b = SharedL3::haswell();
        let mut wrapped = Core::new();
        for i in 0..20_000u64 {
            let ex = wrapped.retire(InstClass::Extract, &[]);
            let ev = wrapped.retire(InstClass::Extract, &[]);
            wrapped.retire_mem(InstClass::Store, &[ex, ev], (i % 64) * 64, &mut l3b);
        }
        let ratio = wrapped.cycles() as f64 / native.cycles() as f64;
        assert!(ratio < 1.5, "store streams are port-4 bound, ratio {ratio}");
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let mut well = Core::new();
        for i in 0..5_000u64 {
            // Perfectly periodic branch -> learned.
            well.retire_branch(1, i % 2 == 0, &[]);
            well.retire(InstClass::ScalarAlu, &[]);
        }
        let mut badly = Core::new();
        let mut x = 9u64;
        for _ in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            badly.retire_branch(1, (x >> 62) & 1 == 1, &[]);
            badly.retire(InstClass::ScalarAlu, &[]);
        }
        assert!(
            badly.cycles() > well.cycles() * 2,
            "random branches must be much slower: {} vs {}",
            badly.cycles(),
            well.cycles()
        );
        assert!(badly.counters().branch_misses > well.counters().branch_misses * 5);
    }

    #[test]
    fn advance_to_moves_clock_monotonically() {
        let mut c = Core::new();
        c.retire(InstClass::ScalarAlu, &[]);
        c.advance_to(1000);
        assert_eq!(c.cycles(), 1000);
        c.advance_to(500); // never goes backwards
        assert_eq!(c.cycles(), 1000);
        // Subsequent work starts after the sync point.
        let done = c.retire(InstClass::ScalarAlu, &[]);
        assert!(done >= 1000);
    }

    #[test]
    fn counters_track_classes() {
        let mut l3 = SharedL3::haswell();
        let mut c = Core::new();
        c.retire_mem(InstClass::Load, &[], 0, &mut l3);
        c.retire_mem(InstClass::Store, &[], 64, &mut l3);
        c.retire_branch(5, true, &[]);
        c.retire(InstClass::VecAlu, &[]);
        let k = c.counters();
        assert_eq!(k.loads, 1);
        assert_eq!(k.stores, 1);
        assert_eq!(k.branches, 1);
        assert_eq!(k.avx_instrs, 1);
        assert_eq!(k.mem_refs, 2);
        assert_eq!(k.instrs, 4);
    }

    #[test]
    fn precosted_retire_matches_class_based_retire() {
        let mut a = Core::new();
        let mut b = Core::new();
        let mut l3a = SharedL3::haswell();
        let mut l3b = SharedL3::haswell();
        let mut ra = 0;
        let mut rb = 0;
        for i in 0..4_000u64 {
            let class = match i % 5 {
                0 => InstClass::ScalarAlu,
                1 => InstClass::VecAlu,
                2 => InstClass::Shuffle,
                3 => InstClass::Load,
                _ => InstClass::Store,
            };
            if class.is_mem() {
                let addr = (i % 512) * 8;
                let store = class == InstClass::Store;
                ra = a.retire_mem(class, &[ra], addr, &mut l3a);
                rb = b.retire_mem_precosted(class.cost(), class.is_avx(), store, &[rb], addr, &mut l3b);
            } else {
                ra = a.retire(class, &[ra]);
                rb = b.retire_precosted(class.cost(), class.is_avx(), &[rb]);
            }
            assert_eq!(ra, rb);
        }
        assert_eq!(a.cycles(), b.cycles());
        let (ka, kb) = (a.counters(), b.counters());
        assert_eq!(ka.instrs, kb.instrs);
        assert_eq!(ka.avx_instrs, kb.avx_instrs);
        assert_eq!(ka.loads, kb.loads);
        assert_eq!(ka.stores, kb.stores);
        assert_eq!(ka.mem_refs, kb.mem_refs);
        assert_eq!(ka.l1_misses, kb.l1_misses);
    }

    #[test]
    fn legalized_vector_div_inflates_instruction_count() {
        let mut c = Core::new();
        c.retire(InstClass::VecIntDiv, &[]);
        assert!(c.counters().instrs >= 12);
    }
}
