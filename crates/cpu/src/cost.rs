//! Instruction classes and their port/latency cost table.
//!
//! The table is a Haswell-flavoured approximation (the paper's testbed,
//! §V-A): four-wide issue; scalar ALU on ports 0/1/5/6; vector execution
//! restricted to ports 0/1/5 with generally higher latencies; loads on
//! ports 2/3; store data on port 4; branches on port 6. The *relative*
//! numbers are what matters for reproducing the paper's ratios: AVX ops
//! are served by fewer ports and the `extract`/`broadcast` wrappers pay a
//! 3-cycle domain-crossing latency, which is exactly the §VII-A
//! "loads ≈ 2×, branches ≈ 1.9×" microbenchmark behaviour.

/// Execution port bitmask (bit `i` = port `i`, Haswell has 8).
pub type PortMask = u8;

/// Scalar integer ALU ports (p0, p1, p5, p6).
pub const P_ALU: PortMask = 0b0110_0011;
/// Vector ALU ports (p0, p1, p5).
pub const P_VEC: PortMask = 0b0010_0011;
/// Load ports (p2, p3).
pub const P_LOAD: PortMask = 0b0000_1100;
/// Store-data port (p4).
pub const P_STORE: PortMask = 0b0001_0000;
/// Branch ports (p0 + p6 — Haswell retires predicted-not-taken branches
/// on port 0 as well).
pub const P_BRANCH: PortMask = 0b0100_0001;
/// Divider port (p0).
pub const P_DIV: PortMask = 0b0000_0001;
/// Shuffle port (p5) — Haswell has a single shuffle unit.
pub const P_SHUF: PortMask = 0b0010_0000;
/// FP multiply ports (p0, p1).
pub const P_FPMUL: PortMask = 0b0000_0011;
/// FP add port (p1).
pub const P_FPADD: PortMask = 0b0000_0010;

/// Classification of one retired instruction, reported by the VM to the
/// timing model.
///
/// `repr(u8)` with dense discriminants: the class doubles as an index
/// into the static cost table, so the per-retire lookup is one array
/// load instead of a 32-arm match.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum InstClass {
    /// Scalar integer add/sub/logic/shift/compare.
    ScalarAlu,
    /// Scalar integer multiply.
    ScalarMul,
    /// Scalar integer divide/remainder (unpipelined).
    ScalarDiv,
    /// Scalar FP add/sub/compare.
    ScalarFpAdd,
    /// Scalar FP multiply.
    ScalarFpMul,
    /// Scalar FP divide / sqrt (unpipelined).
    ScalarFpDiv,
    /// Scalar load (latency supplied by the cache model).
    Load,
    /// Scalar store.
    Store,
    /// Conditional or unconditional branch (fused cmp+jcc).
    Branch,
    /// Call / return overhead.
    Call,
    /// AVX integer lane add/sub/logic (`vpadd` …).
    VecAlu,
    /// AVX integer multiply (`vpmull`).
    VecMul,
    /// AVX FP add/sub.
    VecFpAdd,
    /// AVX FP multiply.
    VecFpMul,
    /// AVX FP divide (unpipelined, wide).
    VecFpDiv,
    /// AVX compare producing a mask (`vpcmpeq`, `vcmpps`).
    VecCmp,
    /// `vptest` + flag consumption.
    Ptest,
    /// `vpextr`/`vextract` — vector→GPR domain crossing.
    Extract,
    /// `vbroadcast`/`vpinsr`+splat — GPR→vector domain crossing.
    Broadcast,
    /// Cross-lane shuffle (`vperm`).
    Shuffle,
    /// Lane blend (`vblendv`).
    Blend,
    /// `vpinsr` single-lane insert.
    Insert,
    /// Vector integer divide — absent from AVX (§II-C); legalized by the
    /// backend into N scalar divides plus extract/insert wrappers.
    VecIntDiv,
    /// Vector cast with direct AVX support (`vcvt` family).
    VecCast,
    /// Vector cast *without* AVX support (e.g. 64→32 truncation pre
    /// AVX-512, §VII-A: "our microbenchmark for truncation exhibits
    /// overheads of 8×"); legalized to scalar sequences.
    VecCastLegalized,
    /// Contiguous vector load (native vectorized code only).
    VecLoad,
    /// Contiguous vector store (native vectorized code only).
    VecStore,
    /// Proposed AVX gather with in-hardware address voting (§VII-B).
    Gather,
    /// Proposed AVX scatter with in-hardware voting (§VII-B).
    Scatter,
    /// Atomic RMW / cmpxchg (lock-prefixed).
    Atomic,
    /// Memory fence.
    Fence,
    /// Call into the unhardened runtime (libc/libm/pthreads stand-in).
    LibCall,
}

/// Static cost of an instruction class.
#[derive(Clone, Copy, Debug)]
pub struct Cost {
    /// Result latency in cycles (for loads this is *added* to the cache
    /// access latency).
    pub latency: u32,
    /// Ports able to execute the operation.
    pub ports: PortMask,
    /// Cycles the chosen port stays busy (1 = fully pipelined).
    pub occupy: u32,
    /// Additional retired-instruction count charged on top of 1 (e.g. a
    /// legalized vector divide really executes ~12 instructions). Affects
    /// the instruction-increase statistics of Table III, as it did in the
    /// paper's perf counters.
    pub extra_instrs: u32,
}

const fn cost(latency: u32, ports: PortMask, occupy: u32, extra_instrs: u32) -> Cost {
    Cost { latency, ports, occupy, extra_instrs }
}

/// Number of instruction classes (table size).
pub const NUM_INST_CLASSES: usize = 32;

/// Dense cost table, indexed by `InstClass as usize`. Built once at
/// compile time; [`InstClass::cost`] is a single array load on the
/// interpreter's per-instruction path.
static COST_TABLE: [Cost; NUM_INST_CLASSES] = build_cost_table();

const fn build_cost_table() -> [Cost; NUM_INST_CLASSES] {
    let mut t = [cost(0, 0, 0, 0); NUM_INST_CLASSES];
    t[InstClass::ScalarAlu as usize] = cost(1, P_ALU, 1, 0);
    t[InstClass::ScalarMul as usize] = cost(3, 0b0000_0010, 1, 0);
    t[InstClass::ScalarDiv as usize] = cost(26, P_DIV, 20, 0);
    t[InstClass::ScalarFpAdd as usize] = cost(3, P_FPADD, 1, 0);
    t[InstClass::ScalarFpMul as usize] = cost(5, P_FPMUL, 1, 0);
    t[InstClass::ScalarFpDiv as usize] = cost(14, P_DIV, 12, 0);
    t[InstClass::Load as usize] = cost(0, P_LOAD, 1, 0); // + cache latency
    t[InstClass::Store as usize] = cost(1, P_STORE, 1, 0);
    t[InstClass::Branch as usize] = cost(1, P_BRANCH, 1, 0);
    t[InstClass::Call as usize] = cost(2, P_BRANCH, 2, 0);
    t[InstClass::VecAlu as usize] = cost(1, P_VEC, 1, 0);
    t[InstClass::VecMul as usize] = cost(5, 0b0000_0001, 1, 0);
    t[InstClass::VecFpAdd as usize] = cost(3, P_FPADD, 1, 0);
    t[InstClass::VecFpMul as usize] = cost(5, P_FPMUL, 1, 0);
    t[InstClass::VecFpDiv as usize] = cost(28, P_DIV, 24, 0);
    t[InstClass::VecCmp as usize] = cost(1, P_VEC, 1, 0);
    // vptest is 2 uops with ~3c latency into FLAGS on Haswell and
    // competes with the shuffle-heavy check traffic on p0/p5.
    t[InstClass::Ptest as usize] = cost(3, 0b0010_0001, 1, 1);
    // Domain crossing vec<->gpr costs ~3 cycles each way; this is
    // the wrapper tax of Figure 6. Extracts dual-issue on p0/p5.
    t[InstClass::Extract as usize] = cost(3, 0b0010_0001, 1, 0);
    t[InstClass::Broadcast as usize] = cost(3, P_SHUF, 1, 0);
    t[InstClass::Shuffle as usize] = cost(3, P_SHUF, 1, 0);
    t[InstClass::Blend as usize] = cost(1, P_VEC, 1, 0);
    t[InstClass::Insert as usize] = cost(3, P_SHUF, 1, 0);
    // ~4 scalar divides + 4 extracts + 4 inserts.
    t[InstClass::VecIntDiv as usize] = cost(48, P_DIV, 40, 12);
    t[InstClass::VecCast as usize] = cost(3, 0b0010_0001, 1, 0);
    t[InstClass::VecCastLegalized as usize] = cost(8, P_SHUF, 2, 4);
    t[InstClass::VecLoad as usize] = cost(1, P_LOAD, 1, 0); // + cache latency
    t[InstClass::VecStore as usize] = cost(2, P_STORE, 1, 0);
    // §VII-B gathers: one wide op replacing extract+load+broadcast;
    // still a memory op (+cache latency) with a small vote cost.
    t[InstClass::Gather as usize] = cost(2, P_LOAD, 1, 0);
    t[InstClass::Scatter as usize] = cost(3, P_STORE, 1, 0);
    t[InstClass::Atomic as usize] = cost(19, P_LOAD, 6, 0);
    t[InstClass::Fence as usize] = cost(6, P_LOAD, 6, 0);
    t[InstClass::LibCall as usize] = cost(3, P_BRANCH, 2, 0);
    t
}

/// Bit `i` set ⇔ class `i` counts as an AVX instruction (Table II/III).
const AVX_MASK: u32 = class_mask(&[
    InstClass::VecAlu,
    InstClass::VecMul,
    InstClass::VecFpAdd,
    InstClass::VecFpMul,
    InstClass::VecFpDiv,
    InstClass::VecCmp,
    InstClass::Ptest,
    InstClass::Extract,
    InstClass::Broadcast,
    InstClass::Shuffle,
    InstClass::Blend,
    InstClass::Insert,
    InstClass::VecIntDiv,
    InstClass::VecCast,
    InstClass::VecCastLegalized,
    InstClass::VecLoad,
    InstClass::VecStore,
    InstClass::Gather,
    InstClass::Scatter,
]);

/// Bit `i` set ⇔ class `i` references memory (drives the cache model).
const MEM_MASK: u32 = class_mask(&[
    InstClass::Load,
    InstClass::Store,
    InstClass::VecLoad,
    InstClass::VecStore,
    InstClass::Gather,
    InstClass::Scatter,
    InstClass::Atomic,
]);

const fn class_mask(classes: &[InstClass]) -> u32 {
    let mut m = 0u32;
    let mut i = 0;
    while i < classes.len() {
        m |= 1 << (classes[i] as u32);
        i += 1;
    }
    m
}

impl InstClass {
    /// Cost-table lookup (one array load).
    #[inline]
    pub fn cost(self) -> Cost {
        COST_TABLE[self as usize]
    }

    /// True for classes counted as AVX instructions in the perf-style
    /// statistics (Table II/III).
    #[inline]
    pub fn is_avx(self) -> bool {
        AVX_MASK & (1 << (self as u32)) != 0
    }

    /// True for classes that reference memory (drive the cache model).
    #[inline]
    pub fn is_mem(self) -> bool {
        MEM_MASK & (1 << (self as u32)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_at_least_one_port() {
        let all = [
            InstClass::ScalarAlu,
            InstClass::ScalarMul,
            InstClass::ScalarDiv,
            InstClass::ScalarFpAdd,
            InstClass::ScalarFpMul,
            InstClass::ScalarFpDiv,
            InstClass::Load,
            InstClass::Store,
            InstClass::Branch,
            InstClass::Call,
            InstClass::VecAlu,
            InstClass::VecMul,
            InstClass::VecFpAdd,
            InstClass::VecFpMul,
            InstClass::VecFpDiv,
            InstClass::VecCmp,
            InstClass::Ptest,
            InstClass::Extract,
            InstClass::Broadcast,
            InstClass::Shuffle,
            InstClass::Blend,
            InstClass::Insert,
            InstClass::VecIntDiv,
            InstClass::VecCast,
            InstClass::VecCastLegalized,
            InstClass::VecLoad,
            InstClass::VecStore,
            InstClass::Gather,
            InstClass::Scatter,
            InstClass::Atomic,
            InstClass::Fence,
            InstClass::LibCall,
        ];
        for c in all {
            assert!(c.cost().ports != 0, "{c:?} has no ports");
            assert!(c.cost().occupy >= 1, "{c:?} occupancy must be >= 1");
        }
    }

    #[test]
    fn scalar_alu_has_more_ports_than_vector() {
        // The root of the paper's ILP observation (Table III): scalar
        // instructions are served by 4 ports, AVX by 3.
        assert_eq!(InstClass::ScalarAlu.cost().ports.count_ones(), 4);
        assert_eq!(InstClass::VecAlu.cost().ports.count_ones(), 3);
    }

    #[test]
    fn wrappers_pay_domain_crossing() {
        assert!(InstClass::Extract.cost().latency >= 3);
        assert!(InstClass::Broadcast.cost().latency >= 3);
    }

    #[test]
    fn legalized_ops_charge_extra_instructions() {
        assert!(InstClass::VecIntDiv.cost().extra_instrs >= 8);
        assert!(InstClass::VecCastLegalized.cost().extra_instrs >= 4);
        assert_eq!(InstClass::ScalarAlu.cost().extra_instrs, 0);
    }

    #[test]
    fn avx_classification() {
        assert!(InstClass::VecAlu.is_avx());
        assert!(InstClass::Ptest.is_avx());
        assert!(!InstClass::ScalarAlu.is_avx());
        assert!(!InstClass::Load.is_avx());
        assert!(InstClass::Gather.is_mem());
        assert!(!InstClass::Branch.is_mem());
    }
}
