//! # elzar
//!
//! Public API of the ELZAR reproduction — *Triple Modular Redundancy
//! using Intel AVX* (Kuvaiskii et al., DSN 2016).
//!
//! ELZAR hardens unmodified programs against transient CPU faults by
//! replicating **data** across the lanes of 256-bit AVX registers instead
//! of replicating **instructions** (SWIFT-R-style ILR). This crate ties
//! the pieces together:
//!
//! * build a program against [`elzar_ir`]'s builder,
//! * pick a [`Mode`] — plain builds, ELZAR hardening with any
//!   configuration, the SWIFT-R baseline, or the paper's §VII estimates,
//! * [`prepare`] (transform + verify), [`build`] (lower), and
//!   [`execute`] it on the simulated multicore machine.
//!
//! ```
//! use elzar::{execute, Mode};
//! use elzar_ir::builder::{c64, FuncBuilder};
//! use elzar_ir::{Module, Ty};
//! use elzar_vm::{MachineConfig, RunOutcome};
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", vec![], Ty::I64);
//! let x = b.add(c64(40), c64(2));
//! b.ret(x);
//! m.add_func(b.finish());
//!
//! let native = execute(&m, &Mode::Native, &[], MachineConfig::default());
//! let hardened = execute(&m, &Mode::elzar_default(), &[], MachineConfig::default());
//! assert_eq!(native.outcome, RunOutcome::Exited(42));
//! assert_eq!(hardened.outcome, RunOutcome::Exited(42));
//! assert!(hardened.cycles > native.cycles, "TMR is not free");
//! ```

#![warn(missing_docs)]

use elzar_ir::Module;
use elzar_passes::elzar::{harden_module as elzar_harden, ElzarConfig};
use elzar_passes::{decelerate_module, swiftr, vectorize_module};
use elzar_vm::{run_program, MachineConfig, Program, RunResult};

pub use elzar_passes::elzar::{CheckConfig, ElzarConfig as Config, FutureAvx};

/// Build/hardening mode, mirroring the configurations of the paper's
/// evaluation (§V).
#[derive(Clone, PartialEq, Debug)]
pub enum Mode {
    /// `-O3` with vectorization: hinted loops are vectorized
    /// (Figure 1's "native").
    Native,
    /// `-O3 -no-sse -no-avx -fno-vectorize`: the baseline every hardened
    /// build is derived from, and the reference for normalized runtimes.
    NativeNoSimd,
    /// ELZAR hardening with the given configuration.
    Elzar(ElzarConfig),
    /// SWIFT-R instruction triplication (§V-D baseline).
    SwiftR,
    /// Native (vectorized) build slowed by dummy wrapper instructions —
    /// the §VII-D methodology behind the Figure 17 estimate.
    DeceleratedNative,
}

impl Mode {
    /// ELZAR with all checks on — the paper's default.
    pub fn elzar_default() -> Mode {
        Mode::Elzar(ElzarConfig::default())
    }

    /// ELZAR restricted to floating-point data (§V-B).
    pub fn elzar_fp_only() -> Mode {
        Mode::Elzar(ElzarConfig { fp_only: true, ..Default::default() })
    }

    /// ELZAR under the proposed AVX extensions (§VII-B/C).
    pub fn elzar_future_avx() -> Mode {
        Mode::Elzar(ElzarConfig { future: FutureAvx::all(), ..Default::default() })
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Mode::Native => "native".into(),
            Mode::NativeNoSimd => "native-nosimd".into(),
            Mode::Elzar(c) => {
                let mut s = String::from("elzar");
                if c.fp_only {
                    s.push_str("-fp");
                }
                if c.future != FutureAvx::default() {
                    s.push_str("-future");
                }
                if c.checks != CheckConfig::all() {
                    s.push_str("-nochk");
                }
                s
            }
            Mode::SwiftR => "swift-r".into(),
            Mode::DeceleratedNative => "native-decel".into(),
        }
    }
}

/// Apply the mode's transformation pipeline and verify the result.
///
/// # Panics
/// Panics if the transformed module fails verification — that is a bug in
/// a pass, never in user code.
pub fn prepare(m: &Module, mode: &Mode) -> Module {
    let out = match mode {
        Mode::Native => {
            let mut v = m.clone();
            vectorize_module(&mut v);
            v
        }
        Mode::NativeNoSimd => m.clone(),
        Mode::Elzar(cfg) => elzar_harden(m, cfg),
        Mode::SwiftR => swiftr::harden_module(m),
        Mode::DeceleratedNative => {
            let mut v = m.clone();
            vectorize_module(&mut v);
            decelerate_module(&v)
        }
    };
    if let Err(errs) = elzar_ir::verify::verify_module(&out) {
        panic!(
            "pass bug: {} failed verification under {:?}: {:#?}",
            m.name,
            mode,
            &errs[..errs.len().min(5)]
        );
    }
    out
}

/// Prepare and lower to an executable program.
pub fn build(m: &Module, mode: &Mode) -> Program {
    Program::lower(&prepare(m, mode))
}

/// Prepare, lower and run `main` in one step.
pub fn execute(m: &Module, mode: &Mode, input: &[u8], cfg: MachineConfig) -> RunResult {
    let p = build(m, mode);
    run_program(&p, "main", input, cfg)
}

/// Normalized runtime of `run` w.r.t. `baseline` (the y-axis of
/// Figures 11, 12, 14 and 17).
pub fn normalized_runtime(run: &RunResult, baseline: &RunResult) -> f64 {
    run.cycles as f64 / baseline.cycles.max(1) as f64
}

/// Instruction-increase factor w.r.t. a baseline (Table III).
pub fn instr_increase(run: &RunResult, baseline: &RunResult) -> f64 {
    run.counters.instrs as f64 / baseline.counters.instrs.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::Ty;
    use elzar_vm::RunOutcome;

    fn memory_loop() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(500), |b, i| {
            let a = b.load(Ty::I64, acc);
            let s = b.add(a, i);
            b.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.ret(v);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn all_modes_agree_on_results() {
        let m = memory_loop();
        let expect = RunOutcome::Exited(500 * 499 / 2);
        for mode in [
            Mode::Native,
            Mode::NativeNoSimd,
            Mode::elzar_default(),
            Mode::elzar_fp_only(),
            Mode::elzar_future_avx(),
            Mode::SwiftR,
            Mode::DeceleratedNative,
        ] {
            let r = execute(&m, &mode, &[], MachineConfig::default());
            assert_eq!(r.outcome, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn overhead_ordering_matches_paper_on_memory_heavy_code() {
        // On a load/store/branch-dominated loop the paper finds:
        // native <= swift-r <= elzar, and future-AVX ELZAR well below
        // plain ELZAR (§V, §VII).
        let m = memory_loop();
        let cfg = MachineConfig::default();
        let native = execute(&m, &Mode::NativeNoSimd, &[], cfg);
        let swiftr = execute(&m, &Mode::SwiftR, &[], cfg);
        let elz = execute(&m, &Mode::elzar_default(), &[], cfg);
        let fut = execute(&m, &Mode::elzar_future_avx(), &[], cfg);
        let os = normalized_runtime(&swiftr, &native);
        let oe = normalized_runtime(&elz, &native);
        let of = normalized_runtime(&fut, &native);
        assert!(os > 1.2, "SWIFT-R must cost something, got {os:.2}");
        assert!(oe > os, "ELZAR ({oe:.2}x) should exceed SWIFT-R ({os:.2}x) on memory-heavy code");
        assert!(of < oe, "future AVX ({of:.2}x) must beat plain ELZAR ({oe:.2}x)");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Mode::Native.label(), "native");
        assert_eq!(Mode::elzar_default().label(), "elzar");
        assert_eq!(Mode::elzar_future_avx().label(), "elzar-future");
        assert_eq!(Mode::SwiftR.label(), "swift-r");
    }
}
