//! # elzar
//!
//! Public API of the ELZAR reproduction — *Triple Modular Redundancy
//! using Intel AVX* (Kuvaiskii et al., DSN 2016).
//!
//! ELZAR hardens unmodified programs against transient CPU faults by
//! replicating **data** across the lanes of 256-bit AVX registers instead
//! of replicating **instructions** (SWIFT-R-style ILR). This crate is the
//! artifact-centric pipeline tying the pieces together:
//!
//! * build a program against [`elzar_ir`]'s builder,
//! * pick a [`Mode`] — plain builds, ELZAR hardening with any
//!   configuration, the SWIFT-R baseline, or the paper's §VII estimates.
//!   A mode is just a pass pipeline ([`Mode::pipeline`] returns
//!   `Vec<PassDesc>`, runnable by [`elzar_passes::pm::PassManager`] and
//!   overridable via `ELZAR_PASSES` for ablations),
//! * [`Artifact::build`] the mode once — transform, verify, lower — and
//!   reuse the immutable artifact everywhere: [`Artifact::run`] for
//!   batch measurements, [`Artifact::campaign`] for fault injection
//!   (feeding `elzar_fault` its cached golden run), and
//!   [`Artifact::serve`] for the sharded serving runtime,
//! * or let an [`ArtifactSet`] cache builds per `(workload, mode)`
//!   across a whole harness, so a thread sweep or campaign never lowers
//!   the same program twice.
//!
//! See `DESIGN.md` at the repository root for the crate inventory and
//! the full pipeline architecture.
//!
//! ```
//! use elzar::{Artifact, Mode};
//! use elzar_ir::builder::{c64, FuncBuilder};
//! use elzar_ir::{Module, Ty};
//! use elzar_vm::{MachineConfig, RunOutcome};
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", vec![], Ty::I64);
//! let x = b.add(c64(40), c64(2));
//! b.ret(x);
//! m.add_func(b.finish());
//!
//! // Build once per mode; run as many times as needed.
//! let native = Artifact::build(&m, &Mode::Native);
//! let hardened = Artifact::build(&m, &Mode::elzar_default());
//! let rn = native.run(&[], MachineConfig::default());
//! let rh = hardened.run(&[], MachineConfig::default());
//! assert_eq!(rn.outcome, RunOutcome::Exited(42));
//! assert_eq!(rh.outcome, RunOutcome::Exited(42));
//! assert!(rh.cycles > rn.cycles, "TMR is not free");
//! ```

#![warn(missing_docs)]

use elzar_apps::ServeApp;
use elzar_fault::{CampaignConfig, CampaignResult, GoldenRun};
use elzar_ir::Module;
use elzar_passes::elzar::ElzarConfig;
use elzar_passes::pm::{pipeline_from_env, PassDesc, PassManager, PassStat};
use elzar_serve::{ServeConfig, ServeReport, Service};
use elzar_vm::{run_program, MachineConfig, Program, RunResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

pub use elzar_passes::elzar::{CheckConfig, ElzarConfig as Config, FutureAvx};

/// Build/hardening mode, mirroring the configurations of the paper's
/// evaluation (§V). A mode is sugar for a pass pipeline — see
/// [`Mode::pipeline`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Mode {
    /// `-O3` with vectorization: hinted loops are vectorized
    /// (Figure 1's "native").
    Native,
    /// `-O3 -no-sse -no-avx -fno-vectorize`: the baseline every hardened
    /// build is derived from, and the reference for normalized runtimes.
    NativeNoSimd,
    /// ELZAR hardening with the given configuration.
    Elzar(ElzarConfig),
    /// SWIFT-R instruction triplication (§V-D baseline).
    SwiftR,
    /// Native (vectorized) build slowed by dummy wrapper instructions —
    /// the §VII-D methodology behind the Figure 17 estimate.
    DeceleratedNative,
}

impl Mode {
    /// ELZAR with all checks on — the paper's default.
    pub fn elzar_default() -> Mode {
        Mode::Elzar(ElzarConfig::default())
    }

    /// ELZAR restricted to floating-point data (§V-B).
    pub fn elzar_fp_only() -> Mode {
        Mode::Elzar(ElzarConfig { fp_only: true, ..Default::default() })
    }

    /// ELZAR under the proposed AVX extensions (§VII-B/C).
    pub fn elzar_future_avx() -> Mode {
        Mode::Elzar(ElzarConfig { future: FutureAvx::all(), ..Default::default() })
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            Mode::Native => "native".into(),
            Mode::NativeNoSimd => "native-nosimd".into(),
            Mode::Elzar(c) => {
                let mut s = String::from("elzar");
                if c.fp_only {
                    s.push_str("-fp");
                }
                if c.future != FutureAvx::default() {
                    s.push_str("-future");
                }
                if c.checks != CheckConfig::all() {
                    s.push_str("-nochk");
                }
                s
            }
            Mode::SwiftR => "swift-r".into(),
            Mode::DeceleratedNative => "native-decel".into(),
        }
    }

    /// The mode's transformation pipeline as data. This is the entire
    /// definition of what a mode *is* — there is no other dispatch.
    pub fn pipeline(&self) -> Vec<PassDesc> {
        match self {
            Mode::Native => vec![PassDesc::Vectorize],
            Mode::NativeNoSimd => vec![],
            Mode::Elzar(cfg) => vec![PassDesc::Elzar(*cfg)],
            Mode::SwiftR => vec![PassDesc::SwiftR],
            Mode::DeceleratedNative => vec![PassDesc::Vectorize, PassDesc::Decelerate],
        }
    }

    /// The pipeline that will actually run: the `ELZAR_PASSES`
    /// environment override if set (ablations), the mode's own pipeline
    /// otherwise.
    pub fn effective_pipeline(&self) -> Vec<PassDesc> {
        pipeline_from_env().unwrap_or_else(|| self.pipeline())
    }
}

/// Apply the mode's transformation pipeline and verify the result.
///
/// # Panics
/// Panics if the transformed module fails verification — that is a bug in
/// a pass, never in user code.
pub fn prepare(m: &Module, mode: &Mode) -> Module {
    let (out, _stats) = run_pipeline(m, mode);
    out
}

fn run_pipeline(m: &Module, mode: &Mode) -> (Module, Vec<PassStat>) {
    let pipeline = mode.effective_pipeline();
    if pipeline.is_empty() {
        // No pass ran, so no pass verified: check the source module.
        if let Err(errs) = elzar_ir::verify::verify_module(m) {
            panic!(
                "source module {} fails verification under {mode:?}: {:#?}",
                m.name,
                &errs[..errs.len().min(5)]
            );
        }
    }
    PassManager::new().run(m, &pipeline)
}

/// Prepare and lower to an executable program.
///
/// Prefer [`Artifact::build`] (or an [`ArtifactSet`]) — it keeps the
/// lowered program together with its pass stats and golden-run cache so
/// nothing is recomputed per run. This wrapper builds a throwaway
/// artifact and unwraps the program.
pub fn build(m: &Module, mode: &Mode) -> Program {
    Artifact::build(m, mode).into_program()
}

/// Prepare, lower and run `main` in one step (one-shot convenience; a
/// harness measuring the same build repeatedly wants [`Artifact`]).
pub fn execute(m: &Module, mode: &Mode, input: &[u8], cfg: MachineConfig) -> RunResult {
    Artifact::build(m, mode).run(input, cfg)
}

/// Normalized runtime of `run` w.r.t. `baseline` (the y-axis of
/// Figures 11, 12, 14 and 17).
pub fn normalized_runtime(run: &RunResult, baseline: &RunResult) -> f64 {
    run.cycles as f64 / baseline.cycles.max(1) as f64
}

/// Instruction-increase factor w.r.t. a baseline (Table III).
pub fn instr_increase(run: &RunResult, baseline: &RunResult) -> f64 {
    run.counters.instrs as f64 / baseline.counters.instrs.max(1) as f64
}

static BUILDS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of artifact builds (= module lowerings) performed
/// through this crate. Harnesses assert deltas of this counter to prove
/// a sweep lowered each `(workload, mode)` exactly once.
pub fn build_count() -> u64 {
    BUILDS.load(Ordering::Relaxed)
}

/// Golden-run cache key: the fault-free execution is determined by the
/// input bytes and the machine configuration (with any fault plan
/// stripped — golden runs are fault-free by definition).
type GoldenKey = (Vec<u8>, MachineConfig);

/// An immutable build product: one source module taken through one
/// mode's pass pipeline and lowered exactly once.
///
/// The artifact owns everything derived from the build — the lowered
/// [`Program`], the per-pass timing/verification stats, and a cache of
/// golden (fault-free reference) runs keyed by `(input,
/// MachineConfig)` — and exposes every way the repository consumes a
/// build:
///
/// * [`Artifact::run`] — batch execution (figure/table harnesses);
/// * [`Artifact::campaign`] — SEU injection campaigns, feeding
///   [`elzar_fault`] the cached golden run instead of recomputing it;
/// * [`Artifact::serve`] — the sharded resident-VM serving runtime,
///   booting [`elzar_serve`] shards from the shared program.
///
/// Because workload modules are thread-count-agnostic (the worker count
/// comes from [`MachineConfig::threads`] at run time), one artifact
/// covers an entire thread sweep.
#[derive(Debug)]
pub struct Artifact {
    name: String,
    mode: Mode,
    program: Program,
    pass_stats: Vec<PassStat>,
    golden: Mutex<HashMap<GoldenKey, Arc<GoldenRun>>>,
}

impl Artifact {
    /// Transform `m` under `mode` (per-pass verification included) and
    /// lower it. The one place in the repository where lowering happens;
    /// increments [`build_count`].
    ///
    /// # Panics
    /// Panics if a pass emits IR that fails verification.
    pub fn build(m: &Module, mode: &Mode) -> Artifact {
        let (prepared, pass_stats) = run_pipeline(m, mode);
        let program = Program::lower(&prepared);
        BUILDS.fetch_add(1, Ordering::Relaxed);
        Artifact {
            name: m.name.clone(),
            mode: mode.clone(),
            program,
            pass_stats,
            golden: Mutex::new(HashMap::new()),
        }
    }

    /// Name of the source module.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The mode this artifact was built under.
    pub fn mode(&self) -> &Mode {
        &self.mode
    }

    /// The lowered program (shared by every consumer of this build).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Per-pass stats recorded while building (registry name, wall-clock
    /// micros, instruction count after the pass).
    pub fn pass_stats(&self) -> &[PassStat] {
        &self.pass_stats
    }

    /// Unwrap the lowered program, discarding the caches.
    pub fn into_program(self) -> Program {
        self.program
    }

    /// Run `main` to completion on the simulated machine.
    pub fn run(&self, input: &[u8], cfg: MachineConfig) -> RunResult {
        run_program(&self.program, "main", input, cfg)
    }

    /// The golden (fault-free reference) run for `(input, machine)`,
    /// computed on first use and cached — thread sweeps and campaigns
    /// over the same artifact share one reference execution per
    /// configuration. Any fault plan in `machine` is ignored.
    ///
    /// # Panics
    /// Panics if the fault-free program does not exit cleanly (see
    /// [`elzar_fault::golden_run`]).
    pub fn golden(&self, input: &[u8], machine: &MachineConfig) -> Arc<GoldenRun> {
        let mut key_cfg = *machine;
        key_cfg.fault = None;
        let mut cache = self.golden.lock().expect("golden cache poisoned");
        // Borrowed scan first: the cache holds a handful of entries at
        // most, and this avoids cloning a potentially multi-megabyte
        // input just to probe the map on a warm hit.
        if let Some(g) = cache
            .iter()
            .find(|((inp, cfg), _)| *cfg == key_cfg && inp.as_slice() == input)
            .map(|(_, g)| Arc::clone(g))
        {
            return g;
        }
        let g = Arc::new(elzar_fault::golden_run(&self.program, input, &key_cfg));
        cache.insert((input.to_vec(), key_cfg), Arc::clone(&g));
        g
    }

    /// Number of distinct `(input, machine)` golden runs cached so far.
    pub fn golden_cache_len(&self) -> usize {
        self.golden.lock().expect("golden cache poisoned").len()
    }

    /// Run a fault-injection campaign against this build, classifying
    /// every injection against the *cached* golden run for
    /// `(input, cfg.machine)` — the reference execution is computed at
    /// most once per artifact and configuration, no matter how many
    /// campaigns (or seeds) run on it.
    pub fn campaign(&self, input: &[u8], cfg: &CampaignConfig) -> CampaignResult {
        let golden = self.golden(input, &cfg.machine);
        elzar_fault::run_campaign_with_golden(&self.program, input, &golden, cfg)
    }

    /// Serve `service`'s request stream on this build: construct
    /// [`elzar_serve`] shards from the shared lowered program and drain
    /// the stream to completion. `app` must be the serving-form app this
    /// artifact was built from (it carries the entry names and resident
    /// table layout).
    ///
    /// # Panics
    /// Panics if `app`'s module name differs from this artifact's source
    /// module — serving a program against a foreign app's stream and
    /// table layout would silently produce garbage measurements.
    pub fn serve(&self, service: Service, app: &ServeApp, cfg: &ServeConfig) -> ServeReport {
        assert_eq!(
            self.name, app.module.name,
            "Artifact::serve: artifact was built from {:?} but the app is {:?}",
            self.name, app.module.name
        );
        elzar_serve::serve_program(service, &self.program, app, cfg)
    }
}

/// A build cache keyed by `(source name, mode)`: every harness that
/// sweeps workloads across modes, thread counts, seeds or shard counts
/// pulls its artifacts from one set, so each `(workload, mode)` is
/// transformed and lowered exactly once per process.
///
/// Builds happen under the set's lock — two racing callers can never
/// build the same artifact twice (the exactly-once property is what
/// `fig11`/`fig13` assert via [`build_count`] deltas).
#[derive(Debug, Default)]
pub struct ArtifactSet {
    map: Mutex<HashMap<(String, Mode), Arc<Artifact>>>,
}

impl ArtifactSet {
    /// An empty set.
    pub fn new() -> ArtifactSet {
        ArtifactSet::default()
    }

    /// Fetch the artifact for `(name, mode)`, building it from `source`
    /// on first use. `source` is only invoked on a cache miss.
    pub fn get_or_build(&self, name: &str, mode: &Mode, source: impl FnOnce() -> Module) -> Arc<Artifact> {
        let mut map = self.map.lock().expect("artifact set poisoned");
        if let Some(a) = map.get(&(name.to_string(), mode.clone())) {
            return Arc::clone(a);
        }
        let a = Arc::new(Artifact::build(&source(), mode));
        map.insert((name.to_string(), mode.clone()), Arc::clone(&a));
        a
    }

    /// Artifacts built so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("artifact set poisoned").len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::Ty;
    use elzar_vm::RunOutcome;

    fn memory_loop() -> Module {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(500), |b, i| {
            let a = b.load(Ty::I64, acc);
            let s = b.add(a, i);
            b.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.ret(v);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn all_modes_agree_on_results() {
        let m = memory_loop();
        let expect = RunOutcome::Exited(500 * 499 / 2);
        for mode in [
            Mode::Native,
            Mode::NativeNoSimd,
            Mode::elzar_default(),
            Mode::elzar_fp_only(),
            Mode::elzar_future_avx(),
            Mode::SwiftR,
            Mode::DeceleratedNative,
        ] {
            let r = execute(&m, &mode, &[], MachineConfig::default());
            assert_eq!(r.outcome, expect, "mode {mode:?}");
        }
    }

    #[test]
    fn overhead_ordering_matches_paper_on_memory_heavy_code() {
        // On a load/store/branch-dominated loop the paper finds:
        // native <= swift-r <= elzar, and future-AVX ELZAR well below
        // plain ELZAR (§V, §VII).
        let m = memory_loop();
        let cfg = MachineConfig::default();
        let native = execute(&m, &Mode::NativeNoSimd, &[], cfg);
        let swiftr = execute(&m, &Mode::SwiftR, &[], cfg);
        let elz = execute(&m, &Mode::elzar_default(), &[], cfg);
        let fut = execute(&m, &Mode::elzar_future_avx(), &[], cfg);
        let os = normalized_runtime(&swiftr, &native);
        let oe = normalized_runtime(&elz, &native);
        let of = normalized_runtime(&fut, &native);
        assert!(os > 1.2, "SWIFT-R must cost something, got {os:.2}");
        assert!(oe > os, "ELZAR ({oe:.2}x) should exceed SWIFT-R ({os:.2}x) on memory-heavy code");
        assert!(of < oe, "future AVX ({of:.2}x) must beat plain ELZAR ({oe:.2}x)");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Mode::Native.label(), "native");
        assert_eq!(Mode::elzar_default().label(), "elzar");
        assert_eq!(Mode::elzar_future_avx().label(), "elzar-future");
        assert_eq!(Mode::SwiftR.label(), "swift-r");
    }

    #[test]
    fn pipelines_are_data_and_pinned() {
        // The mode → pipeline mapping is part of the public contract:
        // reports and ablations name these pass sequences.
        assert_eq!(Mode::Native.pipeline(), vec![PassDesc::Vectorize]);
        assert_eq!(Mode::NativeNoSimd.pipeline(), vec![]);
        assert_eq!(Mode::elzar_default().pipeline(), vec![PassDesc::elzar_default()]);
        assert_eq!(Mode::SwiftR.pipeline(), vec![PassDesc::SwiftR]);
        assert_eq!(Mode::DeceleratedNative.pipeline(), vec![PassDesc::Vectorize, PassDesc::Decelerate]);
    }

    #[test]
    fn artifact_records_pass_stats_and_counts_builds() {
        let m = memory_loop();
        let before = build_count();
        let a = Artifact::build(&m, &Mode::DeceleratedNative);
        // Other unit tests build artifacts concurrently, so the global
        // counter only moves monotonically here; the figure harnesses
        // assert exact deltas from their single-threaded mains.
        assert!(build_count() > before, "build_count must advance");
        let names: Vec<_> = a.pass_stats().iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["vectorize", "decelerate"]);
        assert_eq!(a.name(), "t");
        assert_eq!(a.mode(), &Mode::DeceleratedNative);
    }

    #[test]
    fn artifact_set_builds_each_mode_exactly_once() {
        let set = ArtifactSet::new();
        let mut sources = 0;
        for _ in 0..4 {
            for mode in [Mode::NativeNoSimd, Mode::elzar_default()] {
                let a = set.get_or_build("t", &mode, || {
                    sources += 1;
                    memory_loop()
                });
                assert_eq!(a.run(&[], MachineConfig::default()).outcome, RunOutcome::Exited(124750));
            }
        }
        // Every cache miss performs exactly one Artifact::build, so the
        // source-closure count is the lowering count.
        assert_eq!(sources, 2, "source modules built and lowered once per mode");
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn golden_runs_are_cached_per_input_and_machine() {
        let mut m = Module::new("g");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(64), |bb, i| {
            let a = bb.load(Ty::I64, acc);
            let s = bb.add(a, i);
            bb.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.call_builtin(elzar_ir::Builtin::OutputI64, vec![v.into()], Ty::Void);
        b.ret(c64(0));
        m.add_func(b.finish());

        let a = Artifact::build(&m, &Mode::elzar_default());
        assert_eq!(a.golden_cache_len(), 0);
        let g1 = a.golden(&[], &MachineConfig::default());
        let g2 = a.golden(&[], &MachineConfig::default());
        assert!(Arc::ptr_eq(&g1, &g2), "same key must share one golden run");
        assert_eq!(a.golden_cache_len(), 1);
        // A different machine config is a different reference execution.
        let other = MachineConfig { threads: 2, ..MachineConfig::default() };
        let g3 = a.golden(&[], &other);
        assert_eq!(a.golden_cache_len(), 2);
        assert_eq!(g1.output, g3.output, "single-threaded kernel: same observable output");
        // Campaigns consume the cache instead of recomputing.
        let cfg = CampaignConfig { runs: 10, ..Default::default() };
        let r = a.campaign(&[], &cfg);
        assert_eq!(r.total(), 10);
        assert_eq!(a.golden_cache_len(), 2, "campaign reused the cached golden run");
    }
}
