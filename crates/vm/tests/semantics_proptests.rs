//! Property tests for the VM's scalar/vector semantics: IR arithmetic
//! must agree with host arithmetic, memory must round-trip, and vector
//! ops must behave lane-wise like their scalar twins.

use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CastOp, CmpPred, Const, Module, Operand, Ty};
use elzar_vm::{run_program, MachineConfig, Program, RunOutcome};
use proptest::prelude::*;

fn run_expr(build: impl FnOnce(&mut FuncBuilder) -> elzar_ir::ValueId) -> i64 {
    let mut m = Module::new("prop");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let v = build(&mut b);
    b.ret(v);
    m.add_func(b.finish());
    let r = run_program(&Program::lower(&m), "main", &[], MachineConfig::default());
    match r.outcome {
        RunOutcome::Exited(x) => x,
        other => panic!("trapped: {other:?}"),
    }
}

proptest! {
    #[test]
    fn int_arithmetic_matches_host(a: i64, b: i64) {
        let ops: [(BinOp, fn(i64, i64) -> i64); 6] = [
            (BinOp::Add, i64::wrapping_add),
            (BinOp::Sub, i64::wrapping_sub),
            (BinOp::Mul, i64::wrapping_mul),
            (BinOp::And, |x, y| x & y),
            (BinOp::Or, |x, y| x | y),
            (BinOp::Xor, |x, y| x ^ y),
        ];
        for (op, host) in ops {
            let got = run_expr(|bb| bb.bin(op, Ty::I64, c64(a), c64(b)));
            prop_assert_eq!(got, host(a, b), "{:?}", op);
        }
    }

    #[test]
    fn guarded_division_matches_host(a: i64, b: i64) {
        let d = b | 1; // never zero
        let got = run_expr(|bb| {
            let safe = bb.bin(BinOp::Or, Ty::I64, c64(b), c64(1));
            bb.bin(BinOp::UDiv, Ty::I64, c64(a), safe)
        });
        prop_assert_eq!(got as u64, (a as u64) / (d as u64));
    }

    #[test]
    fn comparisons_match_host(a: i64, b: i64) {
        let preds: [(CmpPred, fn(i64, i64) -> bool); 4] = [
            (CmpPred::Eq, |x, y| x == y),
            (CmpPred::Slt, |x, y| x < y),
            (CmpPred::Sge, |x, y| x >= y),
            (CmpPred::Ult, |x, y| (x as u64) < (y as u64)),
        ];
        for (p, host) in preds {
            let got = run_expr(|bb| {
                let c = bb.icmp(p, c64(a), c64(b));
                bb.cast(CastOp::ZExt, c, Ty::I64)
            });
            prop_assert_eq!(got != 0, host(a, b), "{:?}", p);
        }
    }

    #[test]
    fn float_arithmetic_matches_host(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
        let got = run_expr(|bb| {
            let x = bb.bin(BinOp::FMul, Ty::F64, Operand::Imm(Const::f64(a)), Operand::Imm(Const::f64(b)));
            let y = bb.bin(BinOp::FAdd, Ty::F64, x, Operand::Imm(Const::f64(1.5)));
            bb.cast(CastOp::Bitcast, y, Ty::I64)
        });
        prop_assert_eq!(f64::from_bits(got as u64), a * b + 1.5);
    }

    #[test]
    fn memory_roundtrips_all_widths(v: u64, off in 0u64..64) {
        for (ty, bytes) in [(Ty::I8, 1u64), (Ty::I16, 2), (Ty::I32, 4), (Ty::I64, 8)] {
            let mask = if bytes == 8 { u64::MAX } else { (1u64 << (bytes * 8)) - 1 };
            let ty2 = ty.clone();
            let got = run_expr(move |bb| {
                let buf = bb.call_builtin(Builtin::Malloc, vec![c64(1024)], Ty::Ptr).unwrap();
                let p = bb.gep(buf, c64((off * bytes) as i64), bytes as u32);
                bb.store(ty2.clone(), Operand::Imm(Const::int((bytes * 8) as u8, v)), p);
                let l = bb.load(ty2.clone(), p);
                bb.cast(CastOp::ZExt, l, Ty::I64)
            });
            prop_assert_eq!(got as u64, v & mask, "{}", ty);
        }
    }

    /// Lane-wise vector arithmetic equals per-lane scalar arithmetic.
    #[test]
    fn vector_ops_are_lanewise(a: i64, b: i64, lane in 0u8..4) {
        let got = run_expr(|bb| {
            let va = bb.splat(c64(a), 4);
            let vb = bb.splat(c64(b), 4);
            let vs = bb.bin(BinOp::Mul, Ty::vec(Ty::I64, 4), va, vb);
            bb.extract(vs, lane)
        });
        prop_assert_eq!(got, a.wrapping_mul(b));
    }

    /// Shift semantics: amounts reduce modulo the width, as on x86.
    #[test]
    fn shifts_reduce_modulo_width(a: i64, s in 0u32..256) {
        let got = run_expr(|bb| bb.bin(BinOp::Shl, Ty::I64, c64(a), c64(i64::from(s))));
        prop_assert_eq!(got, a.wrapping_shl(s % 64));
    }

    /// Esoteric widths wrap at their logical width (§III-D).
    #[test]
    fn i9_wraps_at_512(a in 0u64..512, b in 0u64..512) {
        let got = run_expr(|bb| {
            let x = bb.bin(BinOp::Add, Ty::int(9), Operand::Imm(Const::int(9, a)), Operand::Imm(Const::int(9, b)));
            bb.cast(CastOp::ZExt, x, Ty::I64)
        });
        prop_assert_eq!(got as u64, (a + b) % 512);
    }

    /// Cycle accounting is monotone in work.
    #[test]
    fn more_iterations_cost_more_cycles(n in 1i64..200) {
        let cycles = |iters: i64| {
            let mut m = Module::new("c");
            let mut b = FuncBuilder::new("main", vec![], Ty::I64);
            let acc = b.alloca(Ty::I64, c64(1));
            b.store(Ty::I64, c64(0), acc);
            b.counted_loop(c64(0), c64(iters), |b, i| {
                let v = b.load(Ty::I64, acc);
                let s = b.add(v, i);
                b.store(Ty::I64, s, acc);
            });
            let v = b.load(Ty::I64, acc);
            b.ret(v);
            m.add_func(b.finish());
            run_program(&Program::lower(&m), "main", &[], MachineConfig::default()).cycles
        };
        prop_assert!(cycles(n + 50) > cycles(n));
    }
}
