//! Property tests for the VM's scalar/vector semantics: IR arithmetic
//! must agree with host arithmetic, memory must round-trip, and vector
//! ops must behave lane-wise like their scalar twins.
//!
//! Cases are drawn from the repo's deterministic PRNG (`elzar_rng`)
//! instead of an external property-testing crate: each test sweeps a
//! fixed number of pseudo-random inputs from a per-test seed, plus the
//! usual adversarial edge values.

use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CastOp, CmpPred, Const, Module, Operand, Ty};
use elzar_rng::DetRng;
use elzar_vm::{run_program, MachineConfig, Program, RunOutcome};

const CASES: usize = 48;
const EDGES: [i64; 8] = [0, 1, -1, 2, i64::MIN, i64::MAX, 0x5A5A_5A5A_5A5A_5A5A, -0x1234_5678];

/// Edge values first, then pseudo-random ones.
fn i64_pairs(seed: u64) -> Vec<(i64, i64)> {
    let mut rng = DetRng::seed_from_u64(seed);
    let mut v: Vec<(i64, i64)> = EDGES.iter().flat_map(|&a| EDGES.iter().map(move |&b| (a, b))).collect();
    v.extend((0..CASES).map(|_| (rng.next_u64() as i64, rng.next_u64() as i64)));
    v
}

fn run_expr(build: impl FnOnce(&mut FuncBuilder) -> elzar_ir::ValueId) -> i64 {
    let mut m = Module::new("prop");
    let mut b = FuncBuilder::new("main", vec![], Ty::I64);
    let v = build(&mut b);
    b.ret(v);
    m.add_func(b.finish());
    let r = run_program(&Program::lower(&m), "main", &[], MachineConfig::default());
    match r.outcome {
        RunOutcome::Exited(x) => x,
        other => panic!("trapped: {other:?}"),
    }
}

#[test]
fn int_arithmetic_matches_host() {
    type HostBin = fn(i64, i64) -> i64;
    let ops: [(BinOp, HostBin); 6] = [
        (BinOp::Add, i64::wrapping_add),
        (BinOp::Sub, i64::wrapping_sub),
        (BinOp::Mul, i64::wrapping_mul),
        (BinOp::And, |x, y| x & y),
        (BinOp::Or, |x, y| x | y),
        (BinOp::Xor, |x, y| x ^ y),
    ];
    for (a, b) in i64_pairs(0x1A01) {
        for (op, host) in ops {
            let got = run_expr(|bb| bb.bin(op, Ty::I64, c64(a), c64(b)));
            assert_eq!(got, host(a, b), "{op:?} on ({a}, {b})");
        }
    }
}

#[test]
fn guarded_division_matches_host() {
    for (a, b) in i64_pairs(0x1A02) {
        let d = b | 1; // never zero
        let got = run_expr(|bb| {
            let safe = bb.bin(BinOp::Or, Ty::I64, c64(b), c64(1));
            bb.bin(BinOp::UDiv, Ty::I64, c64(a), safe)
        });
        assert_eq!(got as u64, (a as u64) / (d as u64), "({a}, {b})");
    }
}

#[test]
fn comparisons_match_host() {
    type HostCmp = fn(i64, i64) -> bool;
    let preds: [(CmpPred, HostCmp); 4] = [
        (CmpPred::Eq, |x, y| x == y),
        (CmpPred::Slt, |x, y| x < y),
        (CmpPred::Sge, |x, y| x >= y),
        (CmpPred::Ult, |x, y| (x as u64) < (y as u64)),
    ];
    for (a, b) in i64_pairs(0x1A03) {
        for (p, host) in preds {
            let got = run_expr(|bb| {
                let c = bb.icmp(p, c64(a), c64(b));
                bb.cast(CastOp::ZExt, c, Ty::I64)
            });
            assert_eq!(got != 0, host(a, b), "{p:?} on ({a}, {b})");
        }
    }
}

#[test]
fn float_arithmetic_matches_host() {
    let mut rng = DetRng::seed_from_u64(0x1A04);
    for _ in 0..CASES {
        let a = (rng.next_f64() - 0.5) * 2.0e6;
        let b = (rng.next_f64() - 0.5) * 2.0e6;
        let got = run_expr(|bb| {
            let x = bb.bin(BinOp::FMul, Ty::F64, Operand::Imm(Const::f64(a)), Operand::Imm(Const::f64(b)));
            let y = bb.bin(BinOp::FAdd, Ty::F64, x, Operand::Imm(Const::f64(1.5)));
            bb.cast(CastOp::Bitcast, y, Ty::I64)
        });
        assert_eq!(f64::from_bits(got as u64), a * b + 1.5, "({a}, {b})");
    }
}

#[test]
fn memory_roundtrips_all_widths() {
    let mut rng = DetRng::seed_from_u64(0x1A05);
    for _ in 0..CASES {
        let v = rng.next_u64();
        let off = rng.below(64);
        for (ty, bytes) in [(Ty::I8, 1u64), (Ty::I16, 2), (Ty::I32, 4), (Ty::I64, 8)] {
            let mask = if bytes == 8 { u64::MAX } else { (1u64 << (bytes * 8)) - 1 };
            let ty2 = ty.clone();
            let got = run_expr(move |bb| {
                let buf = bb.call_builtin(Builtin::Malloc, vec![c64(1024)], Ty::Ptr).unwrap();
                let p = bb.gep(buf, c64((off * bytes) as i64), bytes as u32);
                bb.store(ty2.clone(), Operand::Imm(Const::int((bytes * 8) as u8, v)), p);
                let l = bb.load(ty2.clone(), p);
                bb.cast(CastOp::ZExt, l, Ty::I64)
            });
            assert_eq!(got as u64, v & mask, "{ty} at {off}");
        }
    }
}

/// Lane-wise vector arithmetic equals per-lane scalar arithmetic.
#[test]
fn vector_ops_are_lanewise() {
    let mut rng = DetRng::seed_from_u64(0x1A06);
    for (a, b) in i64_pairs(0x1A06) {
        let lane = rng.below(4) as u8;
        let got = run_expr(|bb| {
            let va = bb.splat(c64(a), 4);
            let vb = bb.splat(c64(b), 4);
            let vs = bb.bin(BinOp::Mul, Ty::vec(Ty::I64, 4), va, vb);
            bb.extract(vs, lane)
        });
        assert_eq!(got, a.wrapping_mul(b), "lane {lane} on ({a}, {b})");
    }
}

/// Shift semantics: amounts reduce modulo the width, as on x86.
#[test]
fn shifts_reduce_modulo_width() {
    let mut rng = DetRng::seed_from_u64(0x1A07);
    for _ in 0..CASES {
        let a = rng.next_u64() as i64;
        let s = rng.below(256) as u32;
        let got = run_expr(|bb| bb.bin(BinOp::Shl, Ty::I64, c64(a), c64(i64::from(s))));
        assert_eq!(got, a.wrapping_shl(s % 64), "({a} << {s})");
    }
}

/// Esoteric widths wrap at their logical width (§III-D).
#[test]
fn i9_wraps_at_512() {
    let mut rng = DetRng::seed_from_u64(0x1A08);
    for _ in 0..CASES {
        let a = rng.below(512);
        let b = rng.below(512);
        let got = run_expr(|bb| {
            let x = bb.bin(
                BinOp::Add,
                Ty::int(9),
                Operand::Imm(Const::int(9, a)),
                Operand::Imm(Const::int(9, b)),
            );
            bb.cast(CastOp::ZExt, x, Ty::I64)
        });
        assert_eq!(got as u64, (a + b) % 512, "({a}, {b})");
    }
}

/// Cycle accounting is monotone in work.
#[test]
fn more_iterations_cost_more_cycles() {
    let cycles = |iters: i64| {
        let mut m = Module::new("c");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(iters), |b, i| {
            let v = b.load(Ty::I64, acc);
            let s = b.add(v, i);
            b.store(Ty::I64, s, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.ret(v);
        m.add_func(b.finish());
        run_program(&Program::lower(&m), "main", &[], MachineConfig::default()).cycles
    };
    let mut rng = DetRng::seed_from_u64(0x1A09);
    for _ in 0..12 {
        let n = 1 + rng.below(200) as i64;
        assert!(cycles(n + 50) > cycles(n), "n = {n}");
    }
}
