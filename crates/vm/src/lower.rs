//! Lowering: IR functions → flat, execution-ready code.
//!
//! The interpreter does not walk `elzar_ir` structures directly; each
//! function is lowered once into dense-slot code with pre-evaluated
//! constants and per-instruction vector metadata, roughly what an LLVM
//! backend's instruction selection produces.

use elzar_avx::{LaneWidth, Ymm};
use elzar_cpu::InstClass;
use elzar_ir::inst::{Builtin, Callee, Inst, Terminator};
use elzar_ir::module::{Function, Module};
use elzar_ir::types::Ty;
use elzar_ir::value::{Const, Operand};
use elzar_ir::{BinOp, CastOp, CmpPred, RmwOp};

/// Sentinel "no destination slot".
pub const NO_DST: u32 = u32::MAX;

/// Shape metadata for one operand/result: element width, logical bits,
/// lane count, domain — plus everything the interpreter would otherwise
/// re-derive from them on every execution (masks, fault-bit bound,
/// element size). All fields are filled in by the constructors; treat
/// them as read-only.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VMeta {
    /// True for scalars (lanes == 1 and values held in a GPR).
    pub scalar: bool,
    /// True for f32/f64 elements.
    pub float: bool,
    /// Logical element width in bits (e.g. 9 for `i9`).
    pub bits: u8,
    /// Storage lane width.
    pub width: LaneWidth,
    /// Number of lanes (1 for scalars).
    pub lanes: u8,
    /// Pre-masked: bit mask for the logical element width.
    pub mask: u64,
    /// Pre-masked: value bits kept on a load — for float metas every
    /// storage bit is a value bit, for ints the logical-width mask.
    pub fmask: u64,
    /// Fault-injection bit bound for a destination of this shape (64
    /// for GPRs, lanes × lane-width for YMM destinations).
    pub bound: u32,
    /// Element storage size in bytes.
    pub ebytes: u32,
}

impl VMeta {
    /// Build metadata, pre-deriving the masked widths.
    pub const fn new(scalar: bool, float: bool, bits: u8, width: LaneWidth, lanes: u8) -> VMeta {
        let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
        let wbits = width.bits();
        let fmask = if float {
            if wbits == 32 {
                0xFFFF_FFFF
            } else {
                u64::MAX
            }
        } else {
            mask
        };
        let bound = if scalar { 64 } else { lanes as u32 * wbits };
        VMeta { scalar, float, bits, width, lanes, mask, fmask, bound, ebytes: wbits / 8 }
    }

    /// Metadata for an IR type.
    ///
    /// # Panics
    /// Panics on `Void`.
    pub fn of(ty: &Ty) -> VMeta {
        let elem = ty.elem();
        VMeta::new(
            !ty.is_vector(),
            elem.is_float(),
            elem.scalar_bits() as u8,
            LaneWidth::from_bytes(ty.elem_bytes()),
            ty.lanes(),
        )
    }

    /// Metadata of a 4-way-replicated pointer (§VII-B gather/scatter
    /// address vectors).
    pub const fn ptr4() -> VMeta {
        VMeta::new(false, false, 64, LaneWidth::B64, 4)
    }

    /// Bit mask for the logical element width.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Element storage size in bytes.
    #[inline]
    pub fn elem_bytes(&self) -> u32 {
        self.ebytes
    }
}

/// A lowered operand.
#[derive(Clone, Copy, Debug)]
pub enum LOp {
    /// Read a frame slot.
    Slot(u32),
    /// Scalar constant (canonical bits).
    CS(u64),
    /// Vector constant.
    CV(Ymm),
}

/// Evaluate a constant to its runtime representation.
///
/// # Panics
/// Panics on nested splats (ruled out at construction).
pub fn eval_const(c: &Const) -> LOp {
    match c {
        Const::Int { value, .. } => LOp::CS(*value),
        Const::F32(b) => LOp::CS(u64::from(*b)),
        Const::F64(b) => LOp::CS(*b),
        Const::Ptr(p) => LOp::CS(*p),
        Const::Splat { elem, lanes } => {
            let v = match eval_const(elem) {
                LOp::CS(v) => v,
                _ => panic!("nested vector constant"),
            };
            let m = VMeta::of(&c.ty());
            LOp::CV(Ymm::splat(m.width, usize::from(*lanes), v))
        }
        Const::Undef(ty) => {
            if ty.is_vector() {
                LOp::CV(Ymm::ZERO)
            } else {
                LOp::CS(0)
            }
        }
    }
}

/// Handler selection for one lowered instruction, precomputed at lower
/// time. The interpreter's hot loop dispatches on this dense
/// discriminant into a specialized per-class handler instead of one
/// monolithic match over every instruction form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum DGroup {
    /// GPR-domain compute: scalar bin/cmp/cast/select and address math.
    ScalarAlu,
    /// YMM-domain compute: vector bin/cmp/cast/select and lane ops.
    VecAlu,
    /// Memory traffic: loads, stores, gathers, scatters, atomics,
    /// fences, stack allocation.
    Mem,
    /// Control transfers: direct calls and the thread-management
    /// builtins (spawn/join/lock/unlock), which need whole-machine
    /// access.
    Control,
    /// Runtime calls that only touch memory/output/math.
    Builtin,
}

/// One lowered instruction: the operation form plus its pre-decoded
/// execution data — dispatch group and primary cost class, both
/// resolved once at lower time.
#[derive(Clone, Debug)]
pub struct LInst {
    /// Handler-selection discriminant.
    pub group: DGroup,
    /// Primary timing-model class (operand shapes already folded in).
    pub class: InstClass,
    /// The operation.
    pub kind: LKind,
}

impl LInst {
    /// Pre-decode `kind`: resolve its dispatch group and cost class.
    pub fn decode(kind: LKind) -> LInst {
        let (group, class) = classify(&kind);
        LInst { group, class, kind }
    }
}

/// Dispatch group + primary cost class of an operation form.
fn classify(kind: &LKind) -> (DGroup, InstClass) {
    match kind {
        LKind::Bin { op, m, .. } => {
            let g = if m.scalar { DGroup::ScalarAlu } else { DGroup::VecAlu };
            (g, bin_class(*op, m))
        }
        LKind::Cmp { m, .. } => {
            if m.scalar {
                (DGroup::ScalarAlu, InstClass::ScalarAlu)
            } else {
                (DGroup::VecAlu, InstClass::VecCmp)
            }
        }
        LKind::Cast { op, from, to, .. } => {
            let g = if from.scalar && to.scalar { DGroup::ScalarAlu } else { DGroup::VecAlu };
            (g, cast_class(*op, from, to))
        }
        LKind::Load { m, .. } => (DGroup::Mem, if m.scalar { InstClass::Load } else { InstClass::VecLoad }),
        LKind::Store { m, .. } => {
            (DGroup::Mem, if m.scalar { InstClass::Store } else { InstClass::VecStore })
        }
        LKind::Gep { .. } => (DGroup::ScalarAlu, InstClass::ScalarAlu),
        LKind::Alloca { .. } => (DGroup::Mem, InstClass::ScalarAlu),
        LKind::Select { m, .. } => {
            if m.scalar {
                (DGroup::ScalarAlu, InstClass::ScalarAlu)
            } else {
                (DGroup::VecAlu, InstClass::Blend)
            }
        }
        LKind::CallF { .. } => (DGroup::Control, InstClass::Call),
        LKind::CallB { b, .. } => match b {
            Builtin::Spawn | Builtin::Join | Builtin::Lock | Builtin::Unlock => {
                (DGroup::Control, InstClass::LibCall)
            }
            _ => (DGroup::Builtin, InstClass::LibCall),
        },
        LKind::Extract { .. } => (DGroup::VecAlu, InstClass::Extract),
        LKind::Insert { .. } => (DGroup::VecAlu, InstClass::Insert),
        LKind::Shuffle { .. } => (DGroup::VecAlu, InstClass::Shuffle),
        LKind::Splat { .. } => (DGroup::VecAlu, InstClass::Broadcast),
        LKind::Ptest { .. } => (DGroup::VecAlu, InstClass::Ptest),
        LKind::Gather { .. } => (DGroup::Mem, InstClass::Gather),
        LKind::Scatter { .. } => (DGroup::Mem, InstClass::Scatter),
        LKind::AtomicRmw { .. } | LKind::CmpXchg { .. } => (DGroup::Mem, InstClass::Atomic),
        LKind::Fence => (DGroup::Mem, InstClass::Fence),
    }
}

/// Cost class of a binary operation over the given shape.
fn bin_class(op: BinOp, m: &VMeta) -> InstClass {
    use BinOp::*;
    if m.scalar {
        match op {
            Mul => InstClass::ScalarMul,
            UDiv | SDiv | URem | SRem => InstClass::ScalarDiv,
            FAdd | FSub | FMin | FMax => InstClass::ScalarFpAdd,
            FMul => InstClass::ScalarFpMul,
            FDiv => InstClass::ScalarFpDiv,
            _ => InstClass::ScalarAlu,
        }
    } else {
        match op {
            Mul => InstClass::VecMul,
            UDiv | SDiv | URem | SRem => InstClass::VecIntDiv,
            FAdd | FSub | FMin | FMax => InstClass::VecFpAdd,
            FMul => InstClass::VecFpMul,
            FDiv => InstClass::VecFpDiv,
            _ => InstClass::VecAlu,
        }
    }
}

/// Cost class of a cast between the given shapes.
fn cast_class(op: CastOp, from: &VMeta, to: &VMeta) -> InstClass {
    if to.scalar && from.scalar {
        return match op {
            CastOp::FpToSi
            | CastOp::FpToUi
            | CastOp::SiToFp
            | CastOp::UiToFp
            | CastOp::FpTrunc
            | CastOp::FpExt => InstClass::ScalarFpAdd,
            _ => InstClass::ScalarAlu,
        };
    }
    // Vector casts: AVX2 supports widening integer extends and 32-bit
    // int<->fp; truncation and 64-bit int<->fp are missing (§VII-A).
    match op {
        CastOp::Trunc => InstClass::VecCastLegalized,
        CastOp::ZExt | CastOp::SExt => InstClass::VecCast,
        CastOp::FpTrunc | CastOp::FpExt => InstClass::VecCast,
        CastOp::FpToSi | CastOp::FpToUi | CastOp::SiToFp | CastOp::UiToFp => {
            if from.bits == 64 || to.bits == 64 {
                InstClass::VecCastLegalized
            } else {
                InstClass::VecCast
            }
        }
        CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr => InstClass::VecAlu,
    }
}

/// The operation form of a lowered instruction. `dst == NO_DST` means
/// no result.
#[derive(Clone, Debug)]
pub enum LKind {
    /// Binary arithmetic.
    Bin {
        /// Operation.
        op: BinOp,
        /// Operand shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Left operand.
        a: LOp,
        /// Right operand.
        b: LOp,
    },
    /// Compare (scalar → 0/1, vector → lane mask).
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Operand shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Left operand.
        a: LOp,
        /// Right operand.
        b: LOp,
        /// Macro-fused with the following conditional branch (scalar
        /// cmp+jcc pairs retire as one uop on Haswell).
        fused: bool,
    },
    /// Cast.
    Cast {
        /// Cast kind.
        op: CastOp,
        /// Source shape.
        from: VMeta,
        /// Destination shape.
        to: VMeta,
        /// Destination slot.
        dst: u32,
        /// Source.
        a: LOp,
    },
    /// Memory load (scalar or contiguous vector).
    Load {
        /// Loaded shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Address.
        addr: LOp,
    },
    /// Memory store.
    Store {
        /// Stored shape.
        m: VMeta,
        /// Value.
        val: LOp,
        /// Address.
        addr: LOp,
    },
    /// Address arithmetic.
    Gep {
        /// Destination slot.
        dst: u32,
        /// Base pointer.
        base: LOp,
        /// Index.
        index: LOp,
        /// Scale (bytes).
        scale: u32,
    },
    /// Stack allocation.
    Alloca {
        /// Destination slot (pointer).
        dst: u32,
        /// Element size in bytes.
        elem_bytes: u32,
        /// Element count.
        count: LOp,
    },
    /// Select / blend.
    Select {
        /// Value shape.
        m: VMeta,
        /// Condition shape is scalar `i1`.
        cond_scalar: bool,
        /// Destination slot.
        dst: u32,
        /// Condition.
        cond: LOp,
        /// If-true value.
        a: LOp,
        /// If-false value.
        b: LOp,
    },
    /// Direct call to a module function.
    CallF {
        /// Callee function index.
        func: u32,
        /// Arguments.
        args: Vec<LOp>,
        /// Destination slot.
        dst: u32,
    },
    /// Call into the runtime.
    CallB {
        /// Builtin.
        b: Builtin,
        /// Arguments.
        args: Vec<LOp>,
        /// Per-argument shapes.
        metas: Vec<VMeta>,
        /// Destination slot.
        dst: u32,
        /// Result shape (when the builtin returns a value).
        ret_meta: Option<VMeta>,
    },
    /// Lane extract.
    Extract {
        /// Source vector shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Vector.
        vec: LOp,
        /// Lane index.
        idx: LOp,
    },
    /// Lane insert.
    Insert {
        /// Vector shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Vector.
        vec: LOp,
        /// New value.
        val: LOp,
        /// Lane index.
        idx: LOp,
    },
    /// Lane permutation.
    Shuffle {
        /// Vector shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Source.
        a: LOp,
        /// Result-lane source indices.
        mask: Vec<u8>,
    },
    /// Broadcast.
    Splat {
        /// Result shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Scalar source.
        val: LOp,
    },
    /// Mask fold to flags.
    Ptest {
        /// Mask shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Mask.
        mask: LOp,
    },
    /// Future-AVX gather.
    Gather {
        /// Result shape.
        m: VMeta,
        /// Destination slot.
        dst: u32,
        /// Address vector.
        addrs: LOp,
    },
    /// Future-AVX scatter.
    Scatter {
        /// Value shape.
        m: VMeta,
        /// Value.
        val: LOp,
        /// Address vector.
        addrs: LOp,
    },
    /// Atomic read-modify-write.
    AtomicRmw {
        /// Operation.
        op: RmwOp,
        /// Scalar shape.
        m: VMeta,
        /// Destination slot (old value).
        dst: u32,
        /// Address.
        addr: LOp,
        /// Operand.
        val: LOp,
    },
    /// Atomic compare-exchange.
    CmpXchg {
        /// Scalar shape.
        m: VMeta,
        /// Destination slot (old value).
        dst: u32,
        /// Address.
        addr: LOp,
        /// Expected value.
        expected: LOp,
        /// Replacement.
        new: LOp,
    },
    /// Fence.
    Fence,
}

/// A lowered phi: destination slot plus per-predecessor sources.
#[derive(Clone, Debug)]
pub struct LPhi {
    /// Destination slot.
    pub dst: u32,
    /// `(pred block index, value)` pairs.
    pub incomings: Vec<(u32, LOp)>,
}

/// Lowered terminator.
#[derive(Clone, Debug)]
pub enum LTerm {
    /// Jump.
    Br(u32),
    /// Two-way branch on scalar truth.
    CondBr {
        /// Condition.
        cond: LOp,
        /// If-true block.
        t: u32,
        /// If-false block.
        f: u32,
    },
    /// Three-way branch on ptest flags (scalar `i8`) or directly on a
    /// mask vector (the §VII flag-setting-compare extension).
    PtestBr {
        /// Flags or mask.
        flags: LOp,
        /// Mask shape when branching on a raw mask.
        mask_meta: Option<VMeta>,
        /// Targets: `[all_false, all_true, mixed]`.
        bbs: [u32; 3],
    },
    /// Return.
    Ret(Option<LOp>),
    /// Trap.
    Unreachable,
}

/// A lowered basic block.
#[derive(Clone, Debug)]
pub struct LBlock {
    /// Leading phi nodes (evaluated on edge entry, in parallel).
    pub phis: Vec<LPhi>,
    /// Straight-line instructions.
    pub insts: Vec<LInst>,
    /// Terminator.
    pub term: LTerm,
}

/// A lowered function.
#[derive(Clone, Debug)]
pub struct LFunc {
    /// Symbol name.
    pub name: String,
    /// Parameter count (parameters are slots `0..n_params`).
    pub n_params: u32,
    /// Total slot count.
    pub n_slots: u32,
    /// Blocks (entry is 0).
    pub blocks: Vec<LBlock>,
    /// Fault-injection eligibility (§IV-B: only the hardened region).
    pub hardened: bool,
    /// True when the function returns a value.
    pub returns: bool,
}

/// A lowered module ready to execute.
#[derive(Clone, Debug)]
pub struct Program {
    /// Functions (indices match the IR module's `FuncId`s).
    pub funcs: Vec<LFunc>,
    /// Superblock traces, one per `(func, block)`, for the trace engine.
    pub traces: Vec<Vec<crate::trace::Trace>>,
    /// Initial global segment contents.
    pub globals: Vec<u8>,
    /// Source module name.
    pub name: String,
}

impl Program {
    /// Lower a whole module.
    pub fn lower(m: &Module) -> Program {
        let funcs: Vec<LFunc> = m.funcs.iter().map(lower_func).collect();
        let traces = funcs.iter().enumerate().map(|(i, f)| crate::trace::build_traces(i as u32, f)).collect();
        Program { funcs, traces, globals: m.globals.clone(), name: m.name.clone() }
    }

    /// Function index by name.
    pub fn func_by_name(&self, name: &str) -> Option<u32> {
        self.funcs.iter().position(|f| f.name == name).map(|i| i as u32)
    }

    /// Total static instruction count.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().flat_map(|f| f.blocks.iter()).map(|b| b.insts.len()).sum()
    }
}

fn lop(_f: &Function, o: &Operand) -> LOp {
    match o {
        Operand::Val(v) => LOp::Slot(v.0),
        Operand::Imm(c) => eval_const(c),
    }
}

fn dst_of(f: &Function, iid: elzar_ir::InstId) -> u32 {
    f.insts[iid.0 as usize].result.map(|v| v.0).unwrap_or(NO_DST)
}

fn lower_func(f: &Function) -> LFunc {
    let mut blocks = Vec::with_capacity(f.blocks.len());
    for b in &f.blocks {
        let mut phis = vec![];
        let mut insts = vec![];
        for &iid in &b.insts {
            let data = &f.insts[iid.0 as usize];
            let dst = dst_of(f, iid);
            match &data.inst {
                Inst::Phi { incomings, .. } => {
                    phis.push(LPhi {
                        dst,
                        incomings: incomings.iter().map(|(p, o)| (p.0, lop(f, o))).collect(),
                    });
                }
                inst => insts.push(lower_inst(f, inst, dst)),
            }
        }
        let term = match &b.term {
            Terminator::Br { target } => LTerm::Br(target.0),
            Terminator::CondBr { cond, then_bb, else_bb } => {
                LTerm::CondBr { cond: lop(f, cond), t: then_bb.0, f: else_bb.0 }
            }
            Terminator::PtestBr { flags, all_false, all_true, mixed } => {
                let fty = f.operand_ty(flags);
                let mask_meta = if fty.is_vector() { Some(VMeta::of(&fty)) } else { None };
                LTerm::PtestBr { flags: lop(f, flags), mask_meta, bbs: [all_false.0, all_true.0, mixed.0] }
            }
            Terminator::Ret { val } => LTerm::Ret(val.as_ref().map(|v| lop(f, v))),
            Terminator::Unreachable => LTerm::Unreachable,
        };
        // Macro-fusion: a scalar compare immediately feeding this block's
        // conditional branch retires fused with it.
        if let LTerm::CondBr { cond: LOp::Slot(s), .. } = &term {
            if let Some(LInst { kind: LKind::Cmp { m, dst, fused, .. }, .. }) = insts.last_mut() {
                if m.scalar && *dst == *s {
                    *fused = true;
                }
            }
        }
        blocks.push(LBlock { phis, insts, term });
    }
    LFunc {
        name: f.name.clone(),
        n_params: f.params.len() as u32,
        n_slots: f.vals.len() as u32,
        blocks,
        hardened: f.hardened,
        returns: !f.ret_ty.is_void(),
    }
}

fn lower_inst(f: &Function, inst: &Inst, dst: u32) -> LInst {
    let kind = match inst {
        Inst::Bin { op, ty, a, b } => {
            LKind::Bin { op: *op, m: VMeta::of(ty), dst, a: lop(f, a), b: lop(f, b) }
        }
        Inst::Cmp { pred, ty, a, b } => {
            LKind::Cmp { pred: *pred, m: VMeta::of(ty), dst, a: lop(f, a), b: lop(f, b), fused: false }
        }
        Inst::Cast { op, to, val } => {
            let from = VMeta::of(&f.operand_ty(val));
            LKind::Cast { op: *op, from, to: VMeta::of(to), dst, a: lop(f, val) }
        }
        Inst::Load { ty, addr } => LKind::Load { m: VMeta::of(ty), dst, addr: lop(f, addr) },
        Inst::Store { ty, val, addr } => {
            LKind::Store { m: VMeta::of(ty), val: lop(f, val), addr: lop(f, addr) }
        }
        Inst::Gep { base, index, scale } => {
            LKind::Gep { dst, base: lop(f, base), index: lop(f, index), scale: *scale }
        }
        Inst::Alloca { ty, count } => LKind::Alloca { dst, elem_bytes: ty.bytes(), count: lop(f, count) },
        Inst::Select { cond, ty, a, b } => {
            let cond_scalar = !f.operand_ty(cond).is_vector();
            LKind::Select {
                m: VMeta::of(ty),
                cond_scalar,
                dst,
                cond: lop(f, cond),
                a: lop(f, a),
                b: lop(f, b),
            }
        }
        Inst::Phi { .. } => unreachable!("phis lowered separately"),
        Inst::Call { callee, args, ret_ty } => match callee {
            Callee::Func(fid) => {
                LKind::CallF { func: fid.0, args: args.iter().map(|a| lop(f, a)).collect(), dst }
            }
            Callee::Builtin(b) => LKind::CallB {
                b: *b,
                args: args.iter().map(|a| lop(f, a)).collect(),
                metas: args.iter().map(|a| VMeta::of(&f.operand_ty(a))).collect(),
                dst,
                ret_meta: if ret_ty.is_void() { None } else { Some(VMeta::of(ret_ty)) },
            },
        },
        Inst::ExtractElement { vec, idx, ty } => {
            LKind::Extract { m: VMeta::of(ty), dst, vec: lop(f, vec), idx: lop(f, idx) }
        }
        Inst::InsertElement { vec, val, idx, ty } => {
            LKind::Insert { m: VMeta::of(ty), dst, vec: lop(f, vec), val: lop(f, val), idx: lop(f, idx) }
        }
        Inst::Shuffle { a, mask, ty } => {
            LKind::Shuffle { m: VMeta::of(ty), dst, a: lop(f, a), mask: mask.clone() }
        }
        Inst::Splat { val, ty } => LKind::Splat { m: VMeta::of(ty), dst, val: lop(f, val) },
        Inst::Ptest { mask, ty } => LKind::Ptest { m: VMeta::of(ty), dst, mask: lop(f, mask) },
        Inst::Gather { ty, addrs } => LKind::Gather { m: VMeta::of(ty), dst, addrs: lop(f, addrs) },
        Inst::Scatter { val, addrs, ty } => {
            LKind::Scatter { m: VMeta::of(ty), val: lop(f, val), addrs: lop(f, addrs) }
        }
        Inst::AtomicRmw { op, ty, addr, val } => {
            LKind::AtomicRmw { op: *op, m: VMeta::of(ty), dst, addr: lop(f, addr), val: lop(f, val) }
        }
        Inst::CmpXchg { ty, addr, expected, new } => LKind::CmpXchg {
            m: VMeta::of(ty),
            dst,
            addr: lop(f, addr),
            expected: lop(f, expected),
            new: lop(f, new),
        },
        Inst::Fence => LKind::Fence,
    };
    LInst::decode(kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::Module;

    #[test]
    fn vmeta_of_types() {
        let m = VMeta::of(&Ty::I64);
        assert!(m.scalar && !m.float && m.bits == 64 && m.lanes == 1);
        let m = VMeta::of(&Ty::vec(Ty::F32, 8));
        assert!(!m.scalar && m.float && m.bits == 32 && m.lanes == 8);
        let m = VMeta::of(&Ty::int(9));
        assert_eq!(m.width, LaneWidth::B16);
        assert_eq!(m.mask(), 0x1FF);
    }

    #[test]
    fn const_eval_forms() {
        match eval_const(&Const::i64(-1)) {
            LOp::CS(v) => assert_eq!(v, u64::MAX),
            _ => panic!(),
        }
        match eval_const(&Const::f64(1.5)) {
            LOp::CS(v) => assert_eq!(f64::from_bits(v), 1.5),
            _ => panic!(),
        }
        match eval_const(&Const::i32(7).splat(8)) {
            LOp::CV(y) => {
                for i in 0..8 {
                    assert_eq!(y.lane(LaneWidth::B32, i), 7);
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn lowering_separates_phis_and_keeps_shape() {
        let mut b = FuncBuilder::new("f", vec![Ty::I64], Ty::I64);
        let n = b.param(0);
        let (_, _, _) = b.counted_loop(c64(0), n, |b, i| {
            let _ = b.mul(i, c64(3));
        });
        b.ret(c64(0));
        let mut m = Module::new("t");
        m.add_func(b.finish());
        let p = Program::lower(&m);
        let f = &p.funcs[0];
        assert_eq!(f.n_params, 1);
        assert!(f.returns);
        // Loop header (block 1) carries the induction phi.
        assert_eq!(f.blocks[1].phis.len(), 1);
        assert_eq!(f.blocks[1].phis[0].incomings.len(), 2);
        // Body has the multiply.
        let i0 = &f.blocks[2].insts[0];
        assert!(matches!(i0.kind, LKind::Bin { op: BinOp::Mul, .. }));
        // Pre-decoded execution data resolved at lower time.
        assert_eq!(i0.group, DGroup::ScalarAlu);
        assert_eq!(i0.class, InstClass::ScalarMul);
        assert!(matches!(f.blocks[1].term, LTerm::CondBr { .. }));
    }

    #[test]
    fn program_lookup() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::Void);
        b.ret_void();
        m.add_func(b.finish());
        let p = Program::lower(&m);
        assert_eq!(p.func_by_name("main"), Some(0));
        assert_eq!(p.func_by_name("none"), None);
    }
}
