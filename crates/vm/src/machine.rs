//! The machine: a multi-threaded interpreter for lowered programs with an
//! integrated timing model and SEU fault-injection hooks.
//!
//! Execution model:
//! * threads run in deterministic round-robin quanta; each thread owns a
//!   simulated core ([`elzar_cpu::Core`]) whose clock advances with every
//!   retired instruction;
//! * clocks synchronize at the points where real threads synchronize —
//!   spawn, join, lock acquisition and same-line atomics — using a
//!   virtual-time rule `clock = max(own, peer) + cost`, which reproduces
//!   sub-linear scaling of lock-heavy programs (dedup, SQLite);
//! * wall-clock of a run = max over thread clocks.
//!
//! Fault injection (§IV-B): the machine counts dynamic result-producing
//! instructions in *hardened* functions; when the count hits the plan's
//! index, one bit of that instruction's destination register is flipped
//! (a GPR bit for scalars, one YMM lane bit for vectors).

use crate::lower::{DGroup, LInst, LKind, LOp, LPhi, LTerm, Program, VMeta, NO_DST};
use crate::memory::{Memory, Trap, DEFAULT_MEM_SIZE, INPUT_BASE};
use crate::trace::{TOp, Trace};
use elzar_avx::{majority_extended, majority_simple, LaneWidth, MajorityOutcome, Ymm};
use elzar_cpu::{Core, Counters, InstClass, SharedL3};
use elzar_engine::kernels::{self, KernelTable};
use elzar_engine::{Backend, Engine, EngineKind};
use elzar_ir::{BinOp, Builtin, CastOp, CmpPred, RmwOp};
use std::collections::VecDeque;

/// A planned single-event upset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FaultPlan {
    /// 1-based index of the eligible dynamic instruction to corrupt.
    pub index: u64,
    /// Raw bit offset; reduced modulo the destination register width.
    pub bit: u32,
}

/// Which §III-C recovery routine the `recover` builtin runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum RecoveryPolicy {
    /// Fast path: compare two low lanes, broadcast lane 0 or the top lane.
    Simple,
    /// Extended: full agreement-group analysis; stops on 2+2 splits.
    #[default]
    Extended,
}

/// Machine configuration.
///
/// `MachineConfig` is hashable so build artifacts can key cached golden
/// runs on `(input, MachineConfig)` — every field that changes execution
/// is part of the key.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MachineConfig {
    /// Process memory size in bytes.
    pub mem_size: u64,
    /// Maximum live threads (main + spawned).
    pub max_threads: u32,
    /// Simulated worker threads *requested by the program* via the
    /// `num_threads` builtin. Thread-count-agnostic workloads spawn this
    /// many workers at runtime, so one lowered program serves a whole
    /// thread sweep. Clamped to at least 1.
    pub threads: u32,
    /// Round-robin quantum in instructions.
    pub quantum: u32,
    /// Retired-instruction budget; exceeding it reports a hang.
    pub step_limit: u64,
    /// Optional fault to inject.
    pub fault: Option<FaultPlan>,
    /// Recovery routine selection.
    pub recovery: RecoveryPolicy,
    /// Execution engine (resolved once per machine; the `ELZAR_ENGINE`
    /// environment variable overrides it at resolution time).
    pub engine: EngineKind,
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig {
            mem_size: DEFAULT_MEM_SIZE,
            max_threads: 24,
            threads: 1,
            quantum: 256,
            step_limit: u64::MAX,
            fault: None,
            recovery: RecoveryPolicy::Extended,
            engine: EngineKind::default(),
        }
    }
}

/// How a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Main returned.
    Exited(i64),
    /// A trap fired ("OS-detected").
    Trapped(Trap),
    /// The step budget ran out (hang).
    StepLimit,
}

/// Result of executing a program.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Termination condition.
    pub outcome: RunOutcome,
    /// Observable output bytes.
    pub output: Vec<u8>,
    /// Wall-clock cycles (max over thread clocks).
    pub cycles: u64,
    /// Aggregated perf counters.
    pub counters: Counters,
    /// ELZAR corrections performed at runtime.
    pub corrections: u64,
    /// Eligible (fault-injectable) dynamic instructions executed.
    pub eligible: u64,
    /// Total retired IR instructions.
    pub steps: u64,
    /// Per-thread cycle clocks.
    pub thread_cycles: Vec<u64>,
    /// Heartbeats emitted.
    pub heartbeats: u64,
    /// Retire cycle of every heartbeat, in execution order. Serving
    /// entries emit one heartbeat per completed request, so for a
    /// batched invocation ([`Machine::reenter_batch`]) entry `i` is the
    /// virtual completion offset of the batch's `i`-th request — the
    /// hook the serving runtime uses to attribute per-request latency
    /// inside a batch.
    pub heartbeat_cycles: Vec<u64>,
}

impl RunResult {
    /// Instructions/cycle over the whole run.
    pub fn ilp(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.counters.instrs as f64 / self.cycles as f64
        }
    }
}

/// A runtime value: GPR or YMM contents.
#[derive(Clone, Copy, Debug)]
pub enum RtVal {
    /// Scalar (canonical zero-extended bits).
    S(u64),
    /// Vector.
    V(Ymm),
}

impl RtVal {
    fn s(self) -> u64 {
        match self {
            RtVal::S(v) => v,
            RtVal::V(y) => y.lane(LaneWidth::B64, 0),
        }
    }

    fn v(self, m: &VMeta) -> Ymm {
        match self {
            RtVal::V(y) => y,
            RtVal::S(v) => Ymm::splat(m.width, m.lanes as usize, v),
        }
    }
}

#[derive(Clone)]
struct Frame<'p> {
    func: u32,
    block: u32,
    prev_block: u32,
    ip: u32,
    slots: Vec<RtVal>,
    ready: Vec<u64>,
    ret_dst: u32,
    sp_save: u64,
    /// The function this frame executes — cached so the stepper never
    /// re-indexes `prog.funcs`.
    lf: &'p crate::lower::LFunc,
    /// Current block's instructions (follows `block`).
    insts: &'p [LInst],
    /// Current block's terminator (follows `block`).
    term: &'p LTerm,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Ready,
    BlockedLock(u64),
    BlockedJoin(u32),
    Done,
}

#[derive(Clone)]
struct ThreadCtx<'p> {
    frames: Vec<Frame<'p>>,
    core: Core,
    sp: u64,
    stack_limit: u64,
    state: TState,
    result: u64,
}

#[derive(Clone)]
struct LockInfo {
    owner: Option<u32>,
    release: u64,
    waiters: VecDeque<u32>,
}

/// Mutex registry. Programs hold a handful of distinct mutex addresses,
/// so a dense vector with linear lookup beats hashing: the common case
/// is a hit within the first few entries, with no hashing, no pointer
/// chasing and deterministic iteration for free.
#[derive(Clone, Default)]
struct LockTable {
    entries: Vec<(u64, LockInfo)>,
}

impl LockTable {
    /// Existing lock state for `addr`.
    #[inline]
    fn get_mut(&mut self, addr: u64) -> Option<&mut LockInfo> {
        self.entries.iter_mut().find(|(a, _)| *a == addr).map(|(_, l)| l)
    }

    /// Lock state for `addr`, created on first use.
    #[inline]
    fn entry_mut(&mut self, addr: u64) -> &mut LockInfo {
        if let Some(i) = self.entries.iter().position(|(a, _)| *a == addr) {
            return &mut self.entries[i].1;
        }
        self.entries.push((addr, LockInfo { owner: None, release: 0, waiters: VecDeque::new() }));
        &mut self.entries.last_mut().expect("just pushed").1
    }
}

/// Open-addressed map from cacheline base → (last-writing thread,
/// serialization release cycle), replacing a `HashMap` on the atomics
/// hot path. Keys are 64-byte-aligned addresses, so `u64::MAX` is free
/// as the empty sentinel; probing is linear from a Fibonacci-hashed
/// start slot. The table is cleared when it reaches the same bound the
/// previous `HashMap` version enforced, which keeps memory bounded and
/// is deterministic (clearing only forgets stale serialization points).
#[derive(Clone)]
struct AtomicTable {
    keys: Vec<u64>,
    vals: Vec<(u32, u64)>,
    len: usize,
}

const ATOMIC_EMPTY: u64 = u64::MAX;
const ATOMIC_MAX_ENTRIES: usize = 1 << 17;

impl AtomicTable {
    fn new() -> AtomicTable {
        AtomicTable { keys: vec![ATOMIC_EMPTY; 1024], vals: vec![(0, 0); 1024], len: 0 }
    }

    /// Slot of `key`, or of the first empty probe position.
    #[inline]
    fn slot(keys: &[u64], key: u64) -> usize {
        let mask = keys.len() - 1;
        // Fibonacci hashing spreads the (shifted, aligned) keys well.
        let mut i = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask;
        loop {
            let k = keys[i];
            if k == key || k == ATOMIC_EMPTY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    #[inline]
    fn get(&self, key: u64) -> Option<(u32, u64)> {
        let i = Self::slot(&self.keys, key);
        if self.keys[i] == key {
            Some(self.vals[i])
        } else {
            None
        }
    }

    #[inline]
    fn insert(&mut self, key: u64, val: (u32, u64)) {
        let i = Self::slot(&self.keys, key);
        if self.keys[i] == key {
            self.vals[i] = val;
            return;
        }
        if self.len >= ATOMIC_MAX_ENTRIES {
            // Same memory bound the HashMap version enforced: forget
            // stale serialization points wholesale.
            self.keys.fill(ATOMIC_EMPTY);
            self.len = 0;
            let j = Self::slot(&self.keys, key);
            self.keys[j] = key;
            self.vals[j] = val;
            self.len = 1;
            return;
        }
        self.keys[i] = key;
        self.vals[i] = val;
        self.len += 1;
        // Keep load factor <= 1/2 so probe chains stay short.
        if self.len * 2 > self.keys.len() {
            self.grow();
        }
    }

    #[cold]
    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![ATOMIC_EMPTY; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![(0, 0); new_cap]);
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != ATOMIC_EMPTY {
                let i = Self::slot(&self.keys, k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }
}

const CALL_DEPTH_LIMIT: usize = 220;
const SPAWN_COST: u64 = 2_000;
const JOIN_COST: u64 = 200;
const LOCK_COST: u64 = 40;
const MALLOC_COST: u64 = 100;

/// The interpreter.
///
/// `Clone` snapshots the *entire* execution state — memory, thread
/// contexts, timing model, caches, branch predictor, counters. Because
/// execution is deterministic, resuming a clone behaves exactly like
/// the original would have; the fault-injection campaign exploits this
/// to share the pre-injection prefix across runs.
#[derive(Clone)]
pub struct Machine<'p> {
    prog: &'p Program,
    cfg: MachineConfig,
    mem: Memory,
    threads: Vec<ThreadCtx<'p>>,
    l3: SharedL3,
    locks: LockTable,
    atomics: AtomicTable,
    output: Vec<u8>,
    corrections: u64,
    eligible: u64,
    steps: u64,
    heartbeats: u64,
    heartbeat_cycles: Vec<u64>,
    input_len: u64,
    phi_scratch: Vec<(u32, RtVal, u64)>,
    backend: Backend,
    kern: &'static KernelTable,
}

/// Run `entry` (a function taking no meaningful arguments) of `prog` over
/// `input`, under `cfg`.
///
/// # Panics
/// Panics if `entry` does not exist in the program.
pub fn run_program(prog: &Program, entry: &str, input: &[u8], cfg: MachineConfig) -> RunResult {
    let mut m = Machine::start(prog, entry, input, cfg);
    let outcome = m.run_to_completion();
    m.finish(outcome)
}

impl<'p> Machine<'p> {
    fn new(prog: &'p Program, input: &[u8], cfg: MachineConfig) -> Machine<'p> {
        let backend = cfg.engine.resolve();
        Machine {
            prog,
            cfg,
            mem: Memory::new(cfg.mem_size, &prog.globals, input, cfg.max_threads),
            threads: vec![],
            l3: SharedL3::haswell(),
            locks: LockTable::default(),
            atomics: AtomicTable::new(),
            output: Vec::new(),
            corrections: 0,
            eligible: 0,
            steps: 0,
            heartbeats: 0,
            heartbeat_cycles: Vec::new(),
            input_len: input.len() as u64,
            phi_scratch: Vec::new(),
            backend,
            kern: kernels::table(backend == Backend::TraceSimd),
        }
    }

    fn spawn(&mut self, func: u32, arg: u64, start_cycle: u64) -> Result<u32, Trap> {
        if func as usize >= self.prog.funcs.len() {
            return Err(Trap::BadFunction);
        }
        if self.threads.len() as u32 >= self.cfg.max_threads {
            return Err(Trap::OutOfMemory);
        }
        let tid = self.threads.len() as u32;
        let lf: &'p crate::lower::LFunc = &self.prog.funcs[func as usize];
        let mut slots = vec![RtVal::S(0); lf.n_slots as usize];
        if lf.n_params >= 1 {
            slots[0] = RtVal::S(arg);
        }
        let mut core = Core::new();
        core.advance_to(start_cycle);
        self.threads.push(ThreadCtx {
            frames: vec![Frame {
                func,
                block: 0,
                prev_block: 0,
                ip: 0,
                ready: vec![start_cycle; lf.n_slots as usize],
                slots,
                ret_dst: NO_DST,
                sp_save: self.mem.stack_top(tid),
                lf,
                insts: &lf.blocks[0].insts,
                term: &lf.blocks[0].term,
            }],
            core,
            sp: self.mem.stack_top(tid),
            stack_limit: self.mem.stack_limit(tid),
            state: TState::Ready,
            result: 0,
        });
        Ok(tid)
    }

    /// Create a machine and spawn `entry` as its main thread.
    ///
    /// # Panics
    /// Panics if `entry` does not exist in the program.
    pub fn start(prog: &'p Program, entry: &str, input: &[u8], cfg: MachineConfig) -> Machine<'p> {
        let entry_idx =
            prog.func_by_name(entry).unwrap_or_else(|| panic!("entry function `{entry}` not found"));
        let mut m = Machine::new(prog, input, cfg);
        m.spawn(entry_idx, 0, 0).expect("spawning the main thread cannot fail");
        m
    }

    /// Re-enter a *resident* machine for a fresh invocation of `entry`,
    /// retaining memory (globals, heap, previously written bytes) and
    /// the warmed shared L3, but starting an otherwise clean run:
    /// threads, stacks, locks, output, per-run counters (steps,
    /// eligible, corrections, heartbeats) and any installed fault plan
    /// are reset, `input` replaces the input segment, and `entry` is
    /// spawned as a new main thread at cycle 0.
    ///
    /// This is the request-granular reset the serving runtime uses: a
    /// shard machine preloads its state once (e.g. a KV table), then
    /// serves each request as one `reenter` + run, so per-request
    /// cycles/eligible counts are measured from the request's own start.
    ///
    /// # Panics
    /// Panics if `entry` does not exist in the program or `input` does
    /// not fit in the input segment.
    pub fn reenter(&mut self, entry: &str, input: &[u8]) {
        self.mem.set_input(input);
        self.reenter_reset(entry, input.len() as u64);
    }

    /// [`Machine::reenter`] for a *batched* invocation: the input
    /// segment receives a multi-request image — a `u64` record count
    /// followed by the concatenated `parts`, one encoded request each
    /// ([`Memory::set_input_parts`] layout) — and `entry` runs once over
    /// the whole mini-trace. Batched serve entries read the count from
    /// the first input word and iterate the fixed-stride records behind
    /// it, emitting one heartbeat per request so
    /// [`RunResult::heartbeat_cycles`] carries each request's completion
    /// offset inside the batch.
    ///
    /// Everything else behaves exactly like [`Machine::reenter`]: the
    /// resident memory and warm L3 survive, threads/output/counters and
    /// any fault plan are reset, and the run starts at cycle 0.
    ///
    /// # Panics
    /// Panics if `entry` does not exist in the program or the combined
    /// image does not fit in the input segment.
    pub fn reenter_batch(&mut self, entry: &str, parts: &[&[u8]]) {
        let len = self.mem.set_input_parts(parts);
        self.reenter_reset(entry, len as u64);
    }

    /// The reset shared by [`Machine::reenter`] and
    /// [`Machine::reenter_batch`] — everything except writing the input
    /// image, which the callers have already done.
    fn reenter_reset(&mut self, entry: &str, input_len: u64) {
        let entry_idx =
            self.prog.func_by_name(entry).unwrap_or_else(|| panic!("entry function `{entry}` not found"));
        // Fresh stacks: a new invocation must read zeros where a fresh
        // machine would, not the previous invocation's frames.
        self.mem.reset_stacks();
        self.input_len = input_len;
        self.threads.clear();
        self.locks = LockTable::default();
        // Stale atomic serialization points carry release cycles from
        // the previous invocation's clock domain; the new run starts at
        // cycle 0, so they must not stall it.
        self.atomics = AtomicTable::new();
        self.output.clear();
        self.corrections = 0;
        self.eligible = 0;
        self.steps = 0;
        self.heartbeats = 0;
        self.heartbeat_cycles.clear();
        self.cfg.fault = None;
        self.spawn(entry_idx, 0, 0).expect("spawning the entry thread cannot fail");
    }

    /// The machine's memory (e.g. to digest resident state between
    /// [`Machine::reenter`] invocations).
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Wall-clock cycles of the current invocation so far (max over
    /// thread clocks) — [`RunResult::cycles`] without materializing a
    /// result. Replay loops that only need timing use this instead of
    /// cloning output/counter vectors per request.
    pub fn cycles_so_far(&self) -> u64 {
        self.threads.iter().map(|t| t.core.cycles()).max().unwrap_or(0)
    }

    /// Execute one scheduler round: wake joiners, give every ready
    /// thread one quantum, then check for exit/deadlock. Returns
    /// `Some(outcome)` when the program is finished, `None` while it is
    /// still running. Round boundaries are exact resumption points —
    /// `run_to_completion` is a plain loop over this — so a machine
    /// cloned between rounds continues bit-identically.
    pub fn run_round(&mut self) -> Option<RunOutcome> {
        // Wake joiners whose target finished.
        for i in 0..self.threads.len() {
            if let TState::BlockedJoin(c) = self.threads[i].state {
                if matches!(self.threads[c as usize].state, TState::Done) {
                    self.threads[i].state = TState::Ready;
                }
            }
        }
        let mut progressed = false;
        let n = self.threads.len();
        for t in 0..n {
            if self.threads[t].state == TState::Ready {
                progressed = true;
                match self.step_quantum(t) {
                    Ok(()) => {}
                    Err(trap) => return Some(RunOutcome::Trapped(trap)),
                }
                if self.steps > self.cfg.step_limit {
                    return Some(RunOutcome::StepLimit);
                }
            }
        }
        if self.threads.iter().all(|t| t.state == TState::Done) {
            return Some(RunOutcome::Exited(self.threads[0].result as i64));
        }
        if !progressed {
            return Some(RunOutcome::Trapped(Trap::Deadlock));
        }
        None
    }

    /// Run scheduler rounds until the program finishes.
    pub fn run_to_completion(&mut self) -> RunOutcome {
        loop {
            if let Some(outcome) = self.run_round() {
                return outcome;
            }
        }
    }

    /// Eligible (fault-injectable) instructions executed so far.
    pub fn eligible_so_far(&self) -> u64 {
        self.eligible
    }

    /// Upper bound on how many *additional* eligible instructions the
    /// next [`Machine::run_round`] can execute (every live thread gets
    /// at most one quantum, and at most every instruction is eligible).
    pub fn eligible_round_bound(&self) -> u64 {
        self.threads.len() as u64 * u64::from(self.cfg.quantum)
    }

    /// Install (or clear) the fault plan for subsequent execution.
    pub fn set_fault(&mut self, fault: Option<FaultPlan>) {
        self.cfg.fault = fault;
    }

    /// Replace the retired-instruction budget.
    pub fn set_step_limit(&mut self, limit: u64) {
        self.cfg.step_limit = limit;
    }

    /// Aggregate result of the current invocation *without* consuming
    /// the machine (the output bytes are cloned). A resident machine
    /// uses this between [`Machine::reenter`] calls.
    pub fn result(&self, outcome: RunOutcome) -> RunResult {
        let mut counters = Counters::default();
        let mut cycles = 0;
        let mut thread_cycles = vec![];
        for t in &self.threads {
            counters.add(&t.core.counters());
            cycles = cycles.max(t.core.cycles());
            thread_cycles.push(t.core.cycles());
        }
        counters.corrections = self.corrections;
        RunResult {
            outcome,
            output: self.output.clone(),
            cycles,
            counters,
            corrections: self.corrections,
            eligible: self.eligible,
            steps: self.steps,
            thread_cycles,
            heartbeats: self.heartbeats,
            heartbeat_cycles: self.heartbeat_cycles.clone(),
        }
    }

    /// Consume the machine, producing the aggregate result.
    pub fn finish(mut self, outcome: RunOutcome) -> RunResult {
        // Move the output out first so `result` clones an empty vec.
        let output = std::mem::take(&mut self.output);
        let mut r = self.result(outcome);
        r.output = output;
        r
    }

    fn step_quantum(&mut self, t: usize) -> Result<(), Trap> {
        match self.backend {
            Backend::Reference => self.step_quantum_ref(t),
            Backend::TraceScalar | Backend::TraceSimd => self.step_quantum_trace_with(t, self.kern),
        }
    }

    /// Reference engine: one pre-decoded instruction at a time.
    pub(crate) fn step_quantum_ref(&mut self, t: usize) -> Result<(), Trap> {
        for _ in 0..self.cfg.quantum {
            if self.threads[t].state != TState::Ready {
                break;
            }
            self.step_inst(t)?;
        }
        Ok(())
    }

    /// Trace engine: enter a superblock at every block head, fall back
    /// to per-instruction stepping for untraceable ops and inside the
    /// fault-injection window. The quantum budget is shared between the
    /// two paths so the interleave with other threads is identical to
    /// the reference engine's.
    pub(crate) fn step_quantum_trace_with(
        &mut self,
        t: usize,
        kern: &'static KernelTable,
    ) -> Result<(), Trap> {
        let prog = self.prog;
        let mut budget = self.cfg.quantum as usize;
        while budget > 0 {
            if self.threads[t].state != TState::Ready {
                break;
            }
            let (func, block, ip) = {
                let fr = self.threads[t].frames.last().expect("live thread has a frame");
                (fr.func, fr.block, fr.ip)
            };
            if ip == 0 {
                let tr = &prog.traces[func as usize][block as usize];
                if !tr.ops.is_empty() && self.trace_window_safe(tr) {
                    let used = self.exec_trace(t, tr, budget, kern)?;
                    // `used == 0` means the first op is a fused pattern
                    // wider than the remaining budget: step through it
                    // per-instruction instead of spinning.
                    if used > 0 {
                        budget -= used;
                        continue;
                    }
                }
            }
            self.step_inst(t)?;
            budget -= 1;
        }
        Ok(())
    }

    /// May this trace be entered without missing the planned fault?
    /// The flip logic lives only in the per-instruction path
    /// ([`Machine::commit`]), so the trace executor refuses to run while
    /// the plan's index could fall inside the trace's write window.
    #[inline]
    fn trace_window_safe(&self, tr: &Trace) -> bool {
        match self.cfg.fault {
            None => true,
            Some(plan) => {
                !tr.hardened || plan.index <= self.eligible || plan.index > self.eligible + tr.writes
            }
        }
    }

    /// Execute up to `budget` reference-steps of `tr` on thread `t`.
    /// Returns the number of steps retired (0 when the first op is a
    /// fused pattern wider than the budget). Every op replays the
    /// reference handler's exact retire and write-back sequence, so
    /// cycles, counters and the eligible count stay bit-identical; the
    /// only differences are pre-resolved costs ([`crate::trace::Pc`]),
    /// whole-register kernels for full-width vector ops, and fused
    /// multi-step patterns that keep intermediates in registers while
    /// committing every intermediate slot exactly as the unfused
    /// sequence would.
    fn exec_trace(
        &mut self,
        t: usize,
        tr: &Trace,
        budget: usize,
        kern: &'static KernelTable,
    ) -> Result<usize, Trap> {
        let Machine { threads, mem, l3, steps, eligible, corrections, phi_scratch, .. } = self;
        let ThreadCtx { frames, core, sp, stack_limit, .. } = &mut threads[t];
        let fr = frames.last_mut().expect("live thread has a frame");
        let hardened = tr.hardened;
        let mut used = 0usize;

        // Write-back: advance the ip and commit the destination slot,
        // mirroring `commit` minus the flip (the entry guard keeps the
        // planned index outside this trace's window).
        macro_rules! put {
            ($dst:expr, $v:expr, $done:expr) => {{
                let dst = $dst;
                fr.ip += 1;
                if dst != NO_DST {
                    fr.slots[dst as usize] = $v;
                    fr.ready[dst as usize] = $done;
                    if hardened {
                        *eligible += 1;
                    }
                }
            }};
        }

        for op in &tr.ops {
            // Never start an op that cannot finish inside the quantum:
            // the per-instruction path picks up partial fused patterns.
            let w = op.weight();
            if used + w > budget {
                break;
            }
            used += w;
            // Counts the op's first reference-step; fused arms account
            // their remaining steps at the matching commit points.
            *steps += 1;
            match op {
                TOp::SBin { op, m, pc, dst, a, b } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra, rb]);
                    let v = scalar_bin(*op, m, va.s(), vb.s())?;
                    put!(*dst, RtVal::S(v), done);
                }
                TOp::SCmp { m, pred, pc, dst, a, b } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra, rb]);
                    let v = u64::from(scalar_cmp(*pred, m, va.s(), vb.s()));
                    put!(*dst, RtVal::S(v), done);
                }
                TOp::SCmpFused { m, pred, dst, a, b } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    // Retires as half of the following jcc: free slot.
                    let done = ra.max(rb);
                    let v = u64::from(scalar_cmp(*pred, m, va.s(), vb.s()));
                    put!(*dst, RtVal::S(v), done);
                }
                TOp::SCast { op, from, to, pc, dst, a } => {
                    let (va, ra) = read_op(fr, a);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra]);
                    put!(*dst, RtVal::S(scalar_cast(*op, from, to, va.s())), done);
                }
                TOp::Gep { pc, dst, base, index, scale } => {
                    let (vb, rb) = read_op(fr, base);
                    let (vi, ri) = read_op(fr, index);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[rb, ri]);
                    let addr = vb.s().wrapping_add((vi.s() as i64).wrapping_mul(i64::from(*scale)) as u64);
                    put!(*dst, RtVal::S(addr), done);
                }
                TOp::Sel { m, cond_scalar, pc, dst, cond, a, b } => {
                    let (vc, rc) = read_op(fr, cond);
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[rc, ra, rb]);
                    let v = if *cond_scalar {
                        if vc.s() & 1 != 0 {
                            va
                        } else {
                            vb
                        }
                    } else {
                        RtVal::V(Ymm::blend(&vc.v(m), &va.v(m), &vb.v(m), m.width, m.lanes as usize))
                    };
                    put!(*dst, v, done);
                }
                TOp::Load { m, pc, dst, addr } => {
                    let (va, ra) = read_op(fr, addr);
                    let a = va.s();
                    let done = core.retire_mem_precosted(pc.cost, pc.avx, false, &[ra], a, l3);
                    let v = if m.scalar {
                        RtVal::S(mem.load(a, m.ebytes)? & m.fmask)
                    } else {
                        let eb = m.ebytes;
                        let mut y = Ymm::ZERO;
                        for i in 0..m.lanes as usize {
                            y.set_lane(m.width, i, mem.load(a + (i as u64) * u64::from(eb), eb)?);
                        }
                        RtVal::V(y)
                    };
                    put!(*dst, v, done);
                }
                TOp::Store { m, pc, val, addr } => {
                    let (vv, rv) = read_op(fr, val);
                    let (va, ra) = read_op(fr, addr);
                    let a = va.s();
                    core.retire_mem_precosted(pc.cost, pc.avx, true, &[rv, ra], a, l3);
                    if m.scalar {
                        mem.store(a, m.ebytes, vv.s())?;
                    } else {
                        let eb = m.ebytes;
                        let y = vv.v(m);
                        for i in 0..m.lanes as usize {
                            mem.store(a + (i as u64) * u64::from(eb), eb, y.lane(m.width, i))?;
                        }
                    }
                    fr.ip += 1;
                }
                TOp::Gather { m, pc, dst, addrs } => {
                    let (va, ra) = read_op(fr, addrs);
                    // §VII-B: hardware majority-votes the replicated
                    // address (pointers are always 4-way replicated).
                    let am = VMeta::ptr4();
                    let voted = match majority_extended(&va.v(&am), am.width, am.lanes as usize) {
                        MajorityOutcome::Recovered { value, corrected } => {
                            if corrected {
                                *corrections += 1;
                            }
                            value
                        }
                        MajorityOutcome::Tie => return Err(Trap::Unrecoverable),
                    };
                    let done = core.retire_mem_precosted(pc.cost, pc.avx, false, &[ra], voted, l3);
                    let loaded = mem.load(voted, m.ebytes)? & m.fmask;
                    put!(*dst, RtVal::V(Ymm::splat(m.width, m.lanes as usize, loaded)), done);
                }
                TOp::Scatter { m, pc, val, addrs } => {
                    let (vv, rv) = read_op(fr, val);
                    let (va, ra) = read_op(fr, addrs);
                    let am = VMeta::ptr4();
                    let addr = match majority_extended(&va.v(&am), am.width, am.lanes as usize) {
                        MajorityOutcome::Recovered { value, corrected } => {
                            if corrected {
                                *corrections += 1;
                            }
                            value
                        }
                        MajorityOutcome::Tie => return Err(Trap::Unrecoverable),
                    };
                    let value = match majority_extended(&vv.v(m), m.width, m.lanes as usize) {
                        MajorityOutcome::Recovered { value, corrected } => {
                            if corrected {
                                *corrections += 1;
                            }
                            value
                        }
                        MajorityOutcome::Tie => return Err(Trap::Unrecoverable),
                    };
                    core.retire_mem_precosted(pc.cost, pc.avx, true, &[rv, ra], addr, l3);
                    mem.store(addr, m.ebytes, value)?;
                    fr.ip += 1;
                }
                TOp::Alloca { pc, dst, elem_bytes, count } => {
                    let (vc, rc) = read_op(fr, count);
                    let size = (vc.s().saturating_mul(u64::from(*elem_bytes)) + 31) & !31;
                    let done = core.retire_precosted(pc.cost, pc.avx, &[rc]);
                    let new_sp = sp.checked_sub(size).ok_or(Trap::StackOverflow)?;
                    if new_sp < *stack_limit {
                        return Err(Trap::StackOverflow);
                    }
                    *sp = new_sp;
                    put!(*dst, RtVal::S(new_sp), done);
                }
                TOp::VBinK { k, m, pc, dst, a, b } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra, rb]);
                    let (ya, yb) = (va.v(m), vb.v(m));
                    let out = (kern.bin[*k as usize])(ya.limbs_ref(), yb.limbs_ref());
                    put!(*dst, RtVal::V(Ymm::from_limbs(out)), done);
                }
                TOp::VBinL { op, m, pc, dst, a, b } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra, rb]);
                    let (ya, yb) = (va.v(m), vb.v(m));
                    let mut r = Ymm::ZERO;
                    for i in 0..m.lanes as usize {
                        r.set_lane(m.width, i, scalar_bin(*op, m, ya.lane(m.width, i), yb.lane(m.width, i))?);
                    }
                    put!(*dst, RtVal::V(r), done);
                }
                TOp::VCmpK { k, m, pc, dst, a, b } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra, rb]);
                    let (ya, yb) = (va.v(m), vb.v(m));
                    let out = (kern.bin[*k as usize])(ya.limbs_ref(), yb.limbs_ref());
                    put!(*dst, RtVal::V(Ymm::from_limbs(out)), done);
                }
                TOp::VCmpL { pred, m, pc, dst, a, b } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra, rb]);
                    let (ya, yb) = (va.v(m), vb.v(m));
                    let v = RtVal::V(
                        ya.cmp_mask(&yb, m.width, m.lanes as usize, |x, y| scalar_cmp(*pred, m, x, y)),
                    );
                    put!(*dst, v, done);
                }
                TOp::VCast { op, from, to, pc, dst, a } => {
                    let (va, ra) = read_op(fr, a);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra]);
                    put!(*dst, vec_cast(*op, from, to, va), done);
                }
                TOp::Extract { m, pc, dst, vec, idx } => {
                    let (vv, rv) = read_op(fr, vec);
                    let (vi, ri) = read_op(fr, idx);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[rv, ri]);
                    let lane = (vi.s() as usize) % (m.lanes as usize);
                    put!(*dst, RtVal::S(vv.v(m).lane(m.width, lane)), done);
                }
                TOp::Insert { m, pc, dst, vec, val, idx } => {
                    let (vv, rv) = read_op(fr, vec);
                    let (vx, rx) = read_op(fr, val);
                    let (vi, ri) = read_op(fr, idx);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[rv, rx, ri]);
                    let lane = (vi.s() as usize) % (m.lanes as usize);
                    put!(*dst, RtVal::V(vv.v(m).with_lane(m.width, lane, vx.s())), done);
                }
                TOp::ShufRot { k, m, pc, dst, a } => {
                    let (va, ra) = read_op(fr, a);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra]);
                    let out = (kern.un[*k as usize])(va.v(m).limbs_ref());
                    put!(*dst, RtVal::V(Ymm::from_limbs(out)), done);
                }
                TOp::Shuf { m, pc, dst, a, mask } => {
                    let (va, ra) = read_op(fr, a);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra]);
                    put!(*dst, RtVal::V(va.v(m).shuffle(m.width, mask)), done);
                }
                TOp::Splat { m, full, pc, dst, val } => {
                    let (vv, rv) = read_op(fr, val);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[rv]);
                    let v = if *full {
                        Ymm::broadcast(m.width, vv.s())
                    } else {
                        Ymm::splat(m.width, m.lanes as usize, vv.s())
                    };
                    put!(*dst, RtVal::V(v), done);
                }
                TOp::Ptest { m, full, pc, dst, mask } => {
                    let (vmask, rm) = read_op(fr, mask);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[rm]);
                    let code = if *full {
                        // Whole-register flags: every bit of the YMM is a
                        // live mask bit, so two 256-bit folds suffice.
                        let y = vmask.v(m);
                        let l = y.limbs_ref();
                        let or = l[0] | l[1] | l[2] | l[3];
                        let and = l[0] & l[1] & l[2] & l[3];
                        if or == 0 {
                            0
                        } else if and == u64::MAX {
                            1
                        } else {
                            2
                        }
                    } else {
                        vmask.v(m).ptest(m.width, m.lanes as usize).code()
                    };
                    put!(*dst, RtVal::S(code), done);
                }
                TOp::Check8Br {
                    k,
                    m,
                    pc_shuf,
                    pc_xor,
                    pc_ptest,
                    d_shuf,
                    d_xor,
                    d_code,
                    a,
                    site,
                    bbs,
                    cont,
                } => {
                    // One read of the checked register feeds all three
                    // fused instructions; no intermediate slot reads.
                    let ya = fr.slots[*a as usize].v(m);
                    let ra = fr.ready[*a as usize];
                    let r1 = core.retire_precosted(pc_shuf.cost, pc_shuf.avx, &[ra]);
                    let rot = (kern.un[*k as usize])(ya.limbs_ref());
                    put!(*d_shuf, RtVal::V(Ymm::from_limbs(rot)), r1);
                    *steps += 1;
                    let r2 = core.retire_precosted(pc_xor.cost, pc_xor.avx, &[ra, r1]);
                    let x = (kern.bin[kernels::BinKernel::Xor as usize])(ya.limbs_ref(), &rot);
                    put!(*d_xor, RtVal::V(Ymm::from_limbs(x)), r2);
                    *steps += 1;
                    let r3 = core.retire_precosted(pc_ptest.cost, pc_ptest.avx, &[r2]);
                    let or = x[0] | x[1] | x[2] | x[3];
                    let and = x[0] & x[1] & x[2] & x[3];
                    let code: usize = if or == 0 {
                        0
                    } else if and == u64::MAX {
                        1
                    } else {
                        2
                    };
                    put!(*d_code, RtVal::S(code as u64), r3);
                    *steps += 1;
                    core.retire_branch(site << 1, code == 0, &[r3]);
                    if code != 0 && bbs[2] != bbs[1] && bbs[2] != bbs[0] {
                        core.retire_branch((site << 1) | 1, code == 1, &[r3]);
                    }
                    apply_edge(fr, phi_scratch, bbs[code]);
                    // The trace's remaining ops (if any) belong to the
                    // `cont` target; any other exit leaves the trace.
                    if bbs[code] != *cont {
                        return Ok(used);
                    }
                }
                TOp::CmpCheckBr { k, m, pc_cmp, pc_ptest, d_mask, d_code, a, b, site, bbs, cont } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let r1 = core.retire_precosted(pc_cmp.cost, pc_cmp.avx, &[ra, rb]);
                    let mask = (kern.bin[*k as usize])(va.v(m).limbs_ref(), vb.v(m).limbs_ref());
                    put!(*d_mask, RtVal::V(Ymm::from_limbs(mask)), r1);
                    *steps += 1;
                    let r2 = core.retire_precosted(pc_ptest.cost, pc_ptest.avx, &[r1]);
                    let or = mask[0] | mask[1] | mask[2] | mask[3];
                    let and = mask[0] & mask[1] & mask[2] & mask[3];
                    let code: usize = if or == 0 {
                        0
                    } else if and == u64::MAX {
                        1
                    } else {
                        2
                    };
                    put!(*d_code, RtVal::S(code as u64), r2);
                    *steps += 1;
                    core.retire_branch(site << 1, code == 0, &[r2]);
                    if code != 0 && bbs[2] != bbs[1] && bbs[2] != bbs[0] {
                        core.retire_branch((site << 1) | 1, code == 1, &[r2]);
                    }
                    apply_edge(fr, phi_scratch, bbs[code]);
                    // The trace's remaining ops (if any) belong to the
                    // `cont` target; any other exit leaves the trace.
                    if bbs[code] != *cont {
                        return Ok(used);
                    }
                }
                TOp::ExtractLoadSplat {
                    em,
                    lm,
                    sm,
                    full,
                    pc_ex,
                    pc_ld,
                    pc_sp,
                    d_lane,
                    d_val,
                    d_vec,
                    vec,
                    idx,
                } => {
                    let (vv, rv) = read_op(fr, vec);
                    let (vi, ri) = read_op(fr, idx);
                    let r1 = core.retire_precosted(pc_ex.cost, pc_ex.avx, &[rv, ri]);
                    let lane = (vi.s() as usize) % (em.lanes as usize);
                    let addr = vv.v(em).lane(em.width, lane);
                    put!(*d_lane, RtVal::S(addr), r1);
                    *steps += 1;
                    let r2 = core.retire_mem_precosted(pc_ld.cost, pc_ld.avx, false, &[r1], addr, l3);
                    let loaded = mem.load(addr, lm.ebytes)? & lm.fmask;
                    put!(*d_val, RtVal::S(loaded), r2);
                    *steps += 1;
                    let r3 = core.retire_precosted(pc_sp.cost, pc_sp.avx, &[r2]);
                    let y = if *full {
                        Ymm::broadcast(sm.width, loaded)
                    } else {
                        Ymm::splat(sm.width, sm.lanes as usize, loaded)
                    };
                    put!(*d_vec, RtVal::V(y), r3);
                }
                TOp::ExtractStore { em, sm, pc_ex, pc_st, d_lane, vec, idx, val } => {
                    let (vv, rv) = read_op(fr, vec);
                    let (vi, ri) = read_op(fr, idx);
                    let r1 = core.retire_precosted(pc_ex.cost, pc_ex.avx, &[rv, ri]);
                    let lane = (vi.s() as usize) % (em.lanes as usize);
                    let addr = vv.v(em).lane(em.width, lane);
                    put!(*d_lane, RtVal::S(addr), r1);
                    *steps += 1;
                    // The store may read the just-committed extract.
                    let (vs, rs) = read_op(fr, val);
                    core.retire_mem_precosted(pc_st.cost, pc_st.avx, true, &[rs, r1], addr, l3);
                    mem.store(addr, sm.ebytes, vs.s())?;
                    fr.ip += 1;
                }
                TOp::VBin2K { k1, k2, m1, m2, pc1, pc2, d1, d2, a, b, o, swapped } => {
                    let (va, ra) = read_op(fr, a);
                    let (vb, rb) = read_op(fr, b);
                    let r1 = core.retire_precosted(pc1.cost, pc1.avx, &[ra, rb]);
                    let out1 = (kern.bin[*k1 as usize])(va.v(m1).limbs_ref(), vb.v(m1).limbs_ref());
                    put!(*d1, RtVal::V(Ymm::from_limbs(out1)), r1);
                    *steps += 1;
                    let (vo, ro) = read_op(fr, o);
                    let r2 = core.retire_precosted(pc2.cost, pc2.avx, &[r1, ro]);
                    let yo = vo.v(m2);
                    let out2 = if *swapped {
                        (kern.bin[*k2 as usize])(yo.limbs_ref(), &out1)
                    } else {
                        (kern.bin[*k2 as usize])(&out1, yo.limbs_ref())
                    };
                    put!(*d2, RtVal::V(Ymm::from_limbs(out2)), r2);
                }
                TOp::VCastId { m, pc, dst, a } => {
                    let (va, ra) = read_op(fr, a);
                    let done = core.retire_precosted(pc.cost, pc.avx, &[ra]);
                    put!(*dst, RtVal::V(va.v(m)), done);
                }
                TOp::VCast2Id { m1, pc1, pc2, d1, d2, a, .. } => {
                    let (va, ra) = read_op(fr, a);
                    let r1 = core.retire_precosted(pc1.cost, pc1.avx, &[ra]);
                    let y = va.v(m1);
                    put!(*d1, RtVal::V(y), r1);
                    *steps += 1;
                    let r2 = core.retire_precosted(pc2.cost, pc2.avx, &[r1]);
                    put!(*d2, RtVal::V(y), r2);
                }
                TOp::CastBinK { k, cm, bm, pc_c, pc_b, d1, d2, a, o, swapped } => {
                    let (va, ra) = read_op(fr, a);
                    let r1 = core.retire_precosted(pc_c.cost, pc_c.avx, &[ra]);
                    let y = va.v(cm);
                    put!(*d1, RtVal::V(y), r1);
                    *steps += 1;
                    let (vo, ro) = read_op(fr, o);
                    let r2 = core.retire_precosted(pc_b.cost, pc_b.avx, &[r1, ro]);
                    let yo = vo.v(bm);
                    let out = if *swapped {
                        (kern.bin[*k as usize])(yo.limbs_ref(), y.limbs_ref())
                    } else {
                        (kern.bin[*k as usize])(y.limbs_ref(), yo.limbs_ref())
                    };
                    put!(*d2, RtVal::V(Ymm::from_limbs(out)), r2);
                }
                TOp::Jump { target } => {
                    core.retire_jump();
                    apply_edge(fr, phi_scratch, *target);
                }
                TOp::CondBr { site, cond, t: tb, f: fb } => {
                    let (v, r) = read_op(fr, cond);
                    let taken = v.s() & 1 != 0;
                    core.retire_branch(*site, taken, &[r]);
                    apply_edge(fr, phi_scratch, if taken { *tb } else { *fb });
                    return Ok(used);
                }
                TOp::PtestBr { site, flags, m, bbs, cont } => {
                    let (v, r) = read_op(fr, flags);
                    let code = match m {
                        None => v.s().min(2) as usize,
                        Some(m) => v.v(m).ptest(m.width, m.lanes as usize).code() as usize,
                    };
                    core.retire_branch(site << 1, code == 0, &[r]);
                    if code != 0 && bbs[2] != bbs[1] && bbs[2] != bbs[0] {
                        core.retire_branch((site << 1) | 1, code == 1, &[r]);
                    }
                    apply_edge(fr, phi_scratch, bbs[code]);
                    // The trace's remaining ops (if any) belong to the
                    // `cont` target; any other exit leaves the trace.
                    if bbs[code] != *cont {
                        return Ok(used);
                    }
                }
            }
        }
        Ok(used)
    }

    #[inline]
    fn step_inst(&mut self, t: usize) -> Result<(), Trap> {
        // The frame caches `&'p` references into the lowered program, so
        // fetching the next instruction is one slice index — no
        // re-derivation through `prog.funcs[f].blocks[b]`.
        let (insts, term, hardened, func_idx, block_idx, ip) = {
            let fr = self.threads[t].frames.last().expect("live thread has a frame");
            (fr.insts, fr.term, fr.lf.hardened, fr.func, fr.block, fr.ip)
        };
        self.steps += 1;
        if (ip as usize) < insts.len() {
            self.exec_inst(t, hardened, &insts[ip as usize])
        } else {
            self.exec_term(t, func_idx, block_idx, term)
        }
    }

    /// Transition the current frame to `target`, evaluating its phis.
    fn take_edge(&mut self, t: usize, target: u32) {
        apply_edge(self.threads[t].frames.last_mut().expect("frame"), &mut self.phi_scratch, target);
    }

    fn exec_term(&mut self, t: usize, func_idx: u32, block_idx: u32, term: &LTerm) -> Result<(), Trap> {
        let site = (u64::from(func_idx) << 16) | u64::from(block_idx);
        match term {
            LTerm::Br(target) => {
                self.threads[t].core.retire_jump();
                self.take_edge(t, *target);
                Ok(())
            }
            LTerm::CondBr { cond, t: tb, f: fb } => {
                let th = &mut self.threads[t];
                let fr = th.frames.last().expect("frame");
                let (v, r) = read_op(fr, cond);
                let taken = v.s() & 1 != 0;
                th.core.retire_branch(site, taken, &[r]);
                self.take_edge(t, if taken { *tb } else { *fb });
                Ok(())
            }
            LTerm::PtestBr { flags, mask_meta, bbs } => {
                let th = &mut self.threads[t];
                let fr = th.frames.last().expect("frame");
                let (v, r) = read_op(fr, flags);
                let code = match mask_meta {
                    None => v.s().min(2) as usize,
                    Some(m) => v.v(m).ptest(m.width, m.lanes as usize).code() as usize,
                };
                // A three-outcome ptest branch is a cascade of two x86
                // conditional jumps (Figure 9: `je` then `ja`). When the
                // mixed outcome aliases a regular target (branch checks
                // disabled), the cascade collapses to a single jcc.
                th.core.retire_branch(site << 1, code == 0, &[r]);
                if code != 0 && bbs[2] != bbs[1] && bbs[2] != bbs[0] {
                    th.core.retire_branch((site << 1) | 1, code == 1, &[r]);
                }
                self.take_edge(t, bbs[code]);
                Ok(())
            }
            LTerm::Ret(val) => {
                let th = &mut self.threads[t];
                let ret = {
                    let fr = th.frames.last().expect("frame");
                    val.as_ref().map(|o| read_op(fr, o))
                };
                let done = th.core.retire(InstClass::Call, &[ret.map(|(_, r)| r).unwrap_or(0)]);
                let fr = th.frames.pop().expect("frame");
                th.sp = fr.sp_save;
                if th.frames.is_empty() {
                    th.result = ret.map(|(v, _)| v.s()).unwrap_or(0);
                    th.state = TState::Done;
                } else if fr.ret_dst != NO_DST {
                    let caller = th.frames.last_mut().expect("caller");
                    let v = ret.map(|(v, _)| v).unwrap_or(RtVal::S(0));
                    caller.slots[fr.ret_dst as usize] = v;
                    caller.ready[fr.ret_dst as usize] = done;
                }
                Ok(())
            }
            LTerm::Unreachable => Err(Trap::Unreachable),
        }
    }

    /// Dispatch one instruction to its pre-decoded handler group. The
    /// discriminant (and the cost class each handler charges) was
    /// resolved at lower time, so the hot path does no re-derivation.
    #[inline]
    fn exec_inst(&mut self, t: usize, hardened: bool, inst: &LInst) -> Result<(), Trap> {
        let out = match inst.group {
            DGroup::ScalarAlu => self.exec_scalar_alu(t, inst)?,
            DGroup::VecAlu => self.exec_vec_alu(t, inst)?,
            DGroup::Mem => self.exec_mem(t, inst)?,
            DGroup::Control => return self.exec_control(t, inst),
            DGroup::Builtin => {
                let LKind::CallB { b, args, metas, dst, ret_meta } = &inst.kind else {
                    unreachable!("builtin group holds only CallB")
                };
                self.exec_simple_builtin(t, *b, args, metas, *dst, ret_meta.as_ref())?;
                self.advance_ip(t);
                self.post_write(t, hardened, *dst, ret_meta.as_ref().map(|m| m.bound).unwrap_or(64));
                return Ok(());
            }
        };
        self.commit(t, hardened, out);
        Ok(())
    }

    /// Write back a handler's result: destination slot, instruction
    /// pointer, and fault-injection accounting — one frame borrow for
    /// all three.
    #[inline]
    fn commit(&mut self, t: usize, hardened: bool, out: Option<(u32, RtVal, u64, u32)>) {
        let fault = self.cfg.fault;
        let eligible = &mut self.eligible;
        let fr = self.threads[t].frames.last_mut().expect("frame");
        fr.ip += 1;
        if let Some((dst, v, ready, bit_bound)) = out {
            if dst != NO_DST {
                fr.slots[dst as usize] = v;
                fr.ready[dst as usize] = ready;
                if hardened {
                    *eligible += 1;
                    if let Some(plan) = fault {
                        if *eligible == plan.index {
                            fr.slots[dst as usize] = flip(v, plan.bit, bit_bound);
                        }
                    }
                }
            }
        }
    }

    /// GPR-domain compute: scalar bin/cmp/cast/select and address math.
    fn exec_scalar_alu(&mut self, t: usize, inst: &LInst) -> Result<Option<(u32, RtVal, u64, u32)>, Trap> {
        let th = &mut self.threads[t];
        let fr = th.frames.last_mut().expect("frame");
        let core = &mut th.core;
        Ok(match &inst.kind {
            LKind::Bin { op, m, dst, a, b } => {
                let (va, ra) = read_op(fr, a);
                let (vb, rb) = read_op(fr, b);
                let done = core.retire(inst.class, &[ra, rb]);
                Some((*dst, RtVal::S(scalar_bin(*op, m, va.s(), vb.s())?), done, 64))
            }
            LKind::Cmp { pred, m, dst, a, b, fused } => {
                let (va, ra) = read_op(fr, a);
                let (vb, rb) = read_op(fr, b);
                let done = if *fused {
                    // Retires as half of the following jcc: free slot.
                    ra.max(rb)
                } else {
                    core.retire(inst.class, &[ra, rb])
                };
                Some((*dst, RtVal::S(u64::from(scalar_cmp(*pred, m, va.s(), vb.s()))), done, 64))
            }
            LKind::Cast { op, from, to, dst, a } => {
                let (va, ra) = read_op(fr, a);
                let done = core.retire(inst.class, &[ra]);
                Some((*dst, RtVal::S(scalar_cast(*op, from, to, va.s())), done, 64))
            }
            LKind::Select { m, cond_scalar, dst, cond, a, b } => {
                let (vc, rc) = read_op(fr, cond);
                let (va, ra) = read_op(fr, a);
                let (vb, rb) = read_op(fr, b);
                let done = core.retire(inst.class, &[rc, ra, rb]);
                let v = if *cond_scalar {
                    if vc.s() & 1 != 0 {
                        va
                    } else {
                        vb
                    }
                } else {
                    RtVal::V(Ymm::blend(&vc.v(m), &va.v(m), &vb.v(m), m.width, m.lanes as usize))
                };
                Some((*dst, v, done, m.bound))
            }
            LKind::Gep { dst, base, index, scale } => {
                let (vb, rb) = read_op(fr, base);
                let (vi, ri) = read_op(fr, index);
                let done = core.retire(inst.class, &[rb, ri]);
                let addr = vb.s().wrapping_add((vi.s() as i64).wrapping_mul(i64::from(*scale)) as u64);
                Some((*dst, RtVal::S(addr), done, 64))
            }
            _ => unreachable!("not a scalar-ALU instruction"),
        })
    }

    /// YMM-domain compute: vector bin/cmp/cast/select and lane ops.
    fn exec_vec_alu(&mut self, t: usize, inst: &LInst) -> Result<Option<(u32, RtVal, u64, u32)>, Trap> {
        let th = &mut self.threads[t];
        let fr = th.frames.last_mut().expect("frame");
        let core = &mut th.core;
        Ok(match &inst.kind {
            LKind::Bin { op, m, dst, a, b } => {
                let (va, ra) = read_op(fr, a);
                let (vb, rb) = read_op(fr, b);
                let done = core.retire(inst.class, &[ra, rb]);
                let (ya, yb) = (va.v(m), vb.v(m));
                let mut r = Ymm::ZERO;
                for i in 0..m.lanes as usize {
                    r.set_lane(m.width, i, scalar_bin(*op, m, ya.lane(m.width, i), yb.lane(m.width, i))?);
                }
                Some((*dst, RtVal::V(r), done, m.bound))
            }
            LKind::Cmp { pred, m, dst, a, b, fused } => {
                let (va, ra) = read_op(fr, a);
                let (vb, rb) = read_op(fr, b);
                let done = if *fused { ra.max(rb) } else { core.retire(inst.class, &[ra, rb]) };
                let (ya, yb) = (va.v(m), vb.v(m));
                let v =
                    RtVal::V(ya.cmp_mask(&yb, m.width, m.lanes as usize, |x, y| scalar_cmp(*pred, m, x, y)));
                Some((*dst, v, done, m.bound))
            }
            LKind::Cast { op, from, to, dst, a } => {
                let (va, ra) = read_op(fr, a);
                let done = core.retire(inst.class, &[ra]);
                Some((*dst, vec_cast(*op, from, to, va), done, to.bound))
            }
            LKind::Select { m, cond_scalar, dst, cond, a, b } => {
                let (vc, rc) = read_op(fr, cond);
                let (va, ra) = read_op(fr, a);
                let (vb, rb) = read_op(fr, b);
                let done = core.retire(inst.class, &[rc, ra, rb]);
                let v = if *cond_scalar {
                    if vc.s() & 1 != 0 {
                        va
                    } else {
                        vb
                    }
                } else {
                    RtVal::V(Ymm::blend(&vc.v(m), &va.v(m), &vb.v(m), m.width, m.lanes as usize))
                };
                Some((*dst, v, done, m.bound))
            }
            LKind::Extract { m, dst, vec, idx } => {
                let (vv, rv) = read_op(fr, vec);
                let (vi, ri) = read_op(fr, idx);
                let done = core.retire(inst.class, &[rv, ri]);
                let lane = (vi.s() as usize) % (m.lanes as usize);
                Some((*dst, RtVal::S(vv.v(m).lane(m.width, lane)), done, 64))
            }
            LKind::Insert { m, dst, vec, val, idx } => {
                let (vv, rv) = read_op(fr, vec);
                let (vx, rx) = read_op(fr, val);
                let (vi, ri) = read_op(fr, idx);
                let done = core.retire(inst.class, &[rv, rx, ri]);
                let lane = (vi.s() as usize) % (m.lanes as usize);
                Some((*dst, RtVal::V(vv.v(m).with_lane(m.width, lane, vx.s())), done, m.bound))
            }
            LKind::Shuffle { m, dst, a, mask } => {
                let (va, ra) = read_op(fr, a);
                let done = core.retire(inst.class, &[ra]);
                Some((*dst, RtVal::V(va.v(m).shuffle(m.width, mask)), done, m.bound))
            }
            LKind::Splat { m, dst, val } => {
                let (vv, rv) = read_op(fr, val);
                let done = core.retire(inst.class, &[rv]);
                Some((*dst, RtVal::V(Ymm::splat(m.width, m.lanes as usize, vv.s())), done, m.bound))
            }
            LKind::Ptest { m, dst, mask } => {
                let (vm, rm) = read_op(fr, mask);
                let done = core.retire(inst.class, &[rm]);
                let code = vm.v(m).ptest(m.width, m.lanes as usize).code();
                Some((*dst, RtVal::S(code), done, 8))
            }
            _ => unreachable!("not a vector-ALU instruction"),
        })
    }

    /// Memory traffic: loads, stores, gathers, scatters, atomics,
    /// fences, stack allocation.
    fn exec_mem(&mut self, t: usize, inst: &LInst) -> Result<Option<(u32, RtVal, u64, u32)>, Trap> {
        // Stack allocation adjusts the thread's stack pointer, which the
        // common borrows below would conflict with — handle it first.
        if let LKind::Alloca { dst, elem_bytes, count } = &inst.kind {
            let th = &mut self.threads[t];
            let (vc, rc) = read_op(th.frames.last().expect("frame"), count);
            let size = (vc.s().saturating_mul(u64::from(*elem_bytes)) + 31) & !31;
            let done = th.core.retire(inst.class, &[rc]);
            let new_sp = th.sp.checked_sub(size).ok_or(Trap::StackOverflow)?;
            if new_sp < th.stack_limit {
                return Err(Trap::StackOverflow);
            }
            th.sp = new_sp;
            return Ok(Some((*dst, RtVal::S(new_sp), done, 64)));
        }
        let th = &mut self.threads[t];
        let fr = th.frames.last_mut().expect("frame");
        let core = &mut th.core;
        Ok(match &inst.kind {
            LKind::Load { m, dst, addr } => {
                let (va, ra) = read_op(fr, addr);
                let a = va.s();
                let done = core.retire_mem(inst.class, &[ra], a, &mut self.l3);
                let v = if m.scalar {
                    RtVal::S(self.mem.load(a, m.ebytes)? & m.fmask)
                } else {
                    let eb = m.ebytes;
                    let mut y = Ymm::ZERO;
                    for i in 0..m.lanes as usize {
                        y.set_lane(m.width, i, self.mem.load(a + (i as u64) * u64::from(eb), eb)?);
                    }
                    RtVal::V(y)
                };
                Some((*dst, v, done, m.bound))
            }
            LKind::Store { m, val, addr } => {
                let (vv, rv) = read_op(fr, val);
                let (va, ra) = read_op(fr, addr);
                let a = va.s();
                core.retire_mem(inst.class, &[rv, ra], a, &mut self.l3);
                if m.scalar {
                    self.mem.store(a, m.ebytes, vv.s())?;
                } else {
                    let eb = m.ebytes;
                    let y = vv.v(m);
                    for i in 0..m.lanes as usize {
                        self.mem.store(a + (i as u64) * u64::from(eb), eb, y.lane(m.width, i))?;
                    }
                }
                None
            }
            LKind::Gather { m, dst, addrs } => {
                let (va, ra) = read_op(fr, addrs);
                // §VII-B: hardware majority-votes the replicated address
                // (pointers are always 4-way replicated).
                let am = VMeta::ptr4();
                let voted = match majority_extended(&va.v(&am), am.width, am.lanes as usize) {
                    MajorityOutcome::Recovered { value, corrected } => {
                        if corrected {
                            self.corrections += 1;
                        }
                        value
                    }
                    MajorityOutcome::Tie => return Err(Trap::Unrecoverable),
                };
                let done = core.retire_mem(inst.class, &[ra], voted, &mut self.l3);
                let loaded = self.mem.load(voted, m.ebytes)? & m.fmask;
                Some((*dst, RtVal::V(Ymm::splat(m.width, m.lanes as usize, loaded)), done, m.bound))
            }
            LKind::Scatter { m, val, addrs } => {
                let (vv, rv) = read_op(fr, val);
                let (va, ra) = read_op(fr, addrs);
                let am = VMeta::ptr4();
                let addr = match majority_extended(&va.v(&am), am.width, am.lanes as usize) {
                    MajorityOutcome::Recovered { value, corrected } => {
                        if corrected {
                            self.corrections += 1;
                        }
                        value
                    }
                    MajorityOutcome::Tie => return Err(Trap::Unrecoverable),
                };
                let value = match majority_extended(&vv.v(m), m.width, m.lanes as usize) {
                    MajorityOutcome::Recovered { value, corrected } => {
                        if corrected {
                            self.corrections += 1;
                        }
                        value
                    }
                    MajorityOutcome::Tie => return Err(Trap::Unrecoverable),
                };
                core.retire_mem(inst.class, &[rv, ra], addr, &mut self.l3);
                self.mem.store(addr, m.ebytes, value)?;
                None
            }
            LKind::AtomicRmw { op, m, dst, addr, val } => {
                let (va, ra) = read_op(fr, addr);
                let (vv, rv) = read_op(fr, val);
                let a = va.s();
                let key = a & !63;
                if let Some((owner, done)) = self.atomics.get(key) {
                    if owner != t as u32 {
                        core.advance_to(done);
                    }
                }
                let done = core.retire_mem(inst.class, &[ra, rv], a, &mut self.l3);
                self.atomics.insert(key, (t as u32, done));
                let old = self.mem.load(a, m.ebytes)? & m.mask;
                let new = rmw(*op, m, old, vv.s());
                self.mem.store(a, m.ebytes, new)?;
                Some((*dst, RtVal::S(old), done, 64))
            }
            LKind::CmpXchg { m, dst, addr, expected, new } => {
                let (va, ra) = read_op(fr, addr);
                let (ve, re) = read_op(fr, expected);
                let (vn, rn) = read_op(fr, new);
                let a = va.s();
                let key = a & !63;
                if let Some((owner, done)) = self.atomics.get(key) {
                    if owner != t as u32 {
                        core.advance_to(done);
                    }
                }
                let done = core.retire_mem(inst.class, &[ra, re, rn], a, &mut self.l3);
                self.atomics.insert(key, (t as u32, done));
                let old = self.mem.load(a, m.ebytes)? & m.mask;
                if old == ve.s() & m.mask {
                    self.mem.store(a, m.ebytes, vn.s() & m.mask)?;
                }
                Some((*dst, RtVal::S(old), done, 64))
            }
            LKind::Fence => {
                core.retire(inst.class, &[]);
                None
            }
            _ => unreachable!("not a memory instruction"),
        })
    }

    /// Control transfers: direct calls and thread-management builtins.
    fn exec_control(&mut self, t: usize, inst: &LInst) -> Result<(), Trap> {
        match &inst.kind {
            LKind::CallF { func, args, dst } => self.exec_call(t, *func, args, *dst),
            LKind::CallB { .. } => self.exec_thread_builtin(t, inst),
            _ => unreachable!("not a control instruction"),
        }
    }

    fn advance_ip(&mut self, t: usize) {
        self.threads[t].frames.last_mut().expect("frame").ip += 1;
    }

    /// Eligibility accounting + planned fault injection on the value just
    /// written to `dst`.
    fn post_write(&mut self, t: usize, hardened: bool, dst: u32, bit_bound: u32) {
        if !hardened || dst == NO_DST {
            return;
        }
        self.eligible += 1;
        if let Some(plan) = self.cfg.fault {
            if self.eligible == plan.index {
                let fr = self.threads[t].frames.last_mut().expect("frame");
                let cur = fr.slots[dst as usize];
                fr.slots[dst as usize] = flip(cur, plan.bit, bit_bound);
            }
        }
    }

    fn exec_call(&mut self, t: usize, func: u32, args: &[LOp], dst: u32) -> Result<(), Trap> {
        let prog = self.prog;
        if func as usize >= prog.funcs.len() {
            return Err(Trap::BadFunction);
        }
        let th = &mut self.threads[t];
        if th.frames.len() >= CALL_DEPTH_LIMIT {
            return Err(Trap::CallDepth);
        }
        let callee: &'p crate::lower::LFunc = &prog.funcs[func as usize];
        let mut slots = vec![RtVal::S(0); callee.n_slots as usize];
        let mut ready = vec![0u64; callee.n_slots as usize];
        let mut deps = 0u64;
        {
            let fr = th.frames.last().expect("frame");
            for (i, a) in args.iter().enumerate().take(callee.n_params as usize) {
                let (v, r) = read_op(fr, a);
                slots[i] = v;
                ready[i] = r;
                deps = deps.max(r);
            }
        }
        let done = th.core.retire(InstClass::Call, &[deps]);
        for r in ready.iter_mut().take(callee.n_params as usize) {
            *r = (*r).max(done);
        }
        th.frames.last_mut().expect("frame").ip += 1;
        th.frames.push(Frame {
            func,
            block: 0,
            prev_block: 0,
            ip: 0,
            slots,
            ready,
            ret_dst: dst,
            sp_save: th.sp,
            lf: callee,
            insts: &callee.blocks[0].insts,
            term: &callee.blocks[0].term,
        });
        Ok(())
    }

    /// Spawn / join / lock / unlock — builtins that manipulate threads.
    fn exec_thread_builtin(&mut self, t: usize, inst: &LInst) -> Result<(), Trap> {
        let LKind::CallB { b, args, dst, .. } = &inst.kind else { unreachable!() };
        // Read args with an immutable borrow first.
        let vals: Vec<(u64, u64)> = {
            let fr = self.threads[t].frames.last().expect("frame");
            args.iter()
                .map(|a| {
                    let (v, r) = read_op(fr, a);
                    (v.s(), r)
                })
                .collect()
        };
        match b {
            Builtin::Spawn => {
                let func = vals.first().map(|v| v.0).unwrap_or(u64::MAX) as u32;
                let arg = vals.get(1).map(|v| v.0).unwrap_or(0);
                let start = self.threads[t].core.cycles() + SPAWN_COST;
                let tid = self.spawn(func, arg, start)?;
                let th = &mut self.threads[t];
                let done = th.core.retire(InstClass::LibCall, &[vals[0].1]);
                let fr = th.frames.last_mut().expect("frame");
                if *dst != NO_DST {
                    fr.slots[*dst as usize] = RtVal::S(u64::from(tid));
                    fr.ready[*dst as usize] = done;
                }
                fr.ip += 1;
                Ok(())
            }
            Builtin::Join => {
                let target = vals.first().map(|v| v.0).unwrap_or(u64::MAX) as usize;
                if target >= self.threads.len() || target == t {
                    return Err(Trap::BadFunction);
                }
                if self.threads[target].state == TState::Done {
                    let child_cycles = self.threads[target].core.cycles();
                    let result = self.threads[target].result;
                    let th = &mut self.threads[t];
                    th.core.advance_to(child_cycles + JOIN_COST);
                    let done = th.core.retire(InstClass::LibCall, &[vals[0].1]);
                    let fr = th.frames.last_mut().expect("frame");
                    if *dst != NO_DST {
                        fr.slots[*dst as usize] = RtVal::S(result);
                        fr.ready[*dst as usize] = done;
                    }
                    fr.ip += 1;
                } else {
                    // Re-execute the join once the child finishes.
                    self.steps -= 1;
                    self.threads[t].state = TState::BlockedJoin(target as u32);
                }
                Ok(())
            }
            Builtin::Lock => {
                let addr = vals.first().map(|v| v.0).unwrap_or(0);
                let own_cycles = self.threads[t].core.cycles();
                let entry = self.locks.entry_mut(addr);
                if entry.owner.is_none() {
                    entry.owner = Some(t as u32);
                    let release = entry.release;
                    let th = &mut self.threads[t];
                    th.core.advance_to(own_cycles.max(release) + LOCK_COST);
                    th.core.retire_mem(InstClass::Atomic, &[vals[0].1], addr, &mut self.l3);
                    th.frames.last_mut().expect("frame").ip += 1;
                } else {
                    entry.waiters.push_back(t as u32);
                    self.steps -= 1;
                    self.threads[t].state = TState::BlockedLock(addr);
                }
                Ok(())
            }
            Builtin::Unlock => {
                let addr = vals.first().map(|v| v.0).unwrap_or(0);
                let own_cycles = {
                    let th = &mut self.threads[t];
                    th.core.retire_mem(InstClass::Atomic, &[vals[0].1], addr, &mut self.l3);
                    th.frames.last_mut().expect("frame").ip += 1;
                    th.core.cycles()
                };
                if let Some(entry) = self.locks.get_mut(addr) {
                    if entry.owner == Some(t as u32) {
                        entry.owner = None;
                        entry.release = entry.release.max(own_cycles);
                        if let Some(w) = entry.waiters.pop_front() {
                            self.threads[w as usize].state = TState::Ready;
                        }
                    }
                }
                Ok(())
            }
            _ => unreachable!("not a thread builtin"),
        }
    }

    /// Builtins that only need memory / output / math.
    #[allow(clippy::too_many_arguments)]
    fn exec_simple_builtin(
        &mut self,
        t: usize,
        b: Builtin,
        args: &[LOp],
        metas: &[VMeta],
        dst: u32,
        _ret_meta: Option<&VMeta>,
    ) -> Result<(), Trap> {
        let th = &mut self.threads[t];
        let fr = th.frames.last_mut().expect("frame");
        let core = &mut th.core;
        // Evaluate arguments.
        let mut vals: [RtVal; 4] = [RtVal::S(0); 4];
        let mut readys: [u64; 4] = [0; 4];
        for (i, a) in args.iter().enumerate().take(4) {
            let (v, r) = read_op(fr, a);
            vals[i] = v;
            readys[i] = r;
        }
        let deps = readys.iter().copied().max().unwrap_or(0);
        let (v, done): (RtVal, u64) = match b {
            Builtin::Malloc => {
                let p = self.mem.malloc(vals[0].s())?;
                (RtVal::S(p), core.retire(InstClass::LibCall, &[deps]) + MALLOC_COST)
            }
            Builtin::Free => (RtVal::S(0), core.retire(InstClass::LibCall, &[deps])),
            Builtin::Memcpy => {
                let (d, s, n) = (vals[0].s(), vals[1].s(), vals[2].s());
                let mut last = core.retire(InstClass::LibCall, &[deps]);
                let mut off = 0;
                while off < n {
                    core.retire_mem(InstClass::VecLoad, &[], s + off, &mut self.l3);
                    last = core.retire_mem(InstClass::VecStore, &[], d + off, &mut self.l3);
                    off += 64;
                }
                self.mem.copy(d, s, n)?;
                (RtVal::S(0), last)
            }
            Builtin::Memset => {
                let (d, byte, n) = (vals[0].s(), vals[1].s(), vals[2].s());
                let mut last = core.retire(InstClass::LibCall, &[deps]);
                let mut off = 0;
                while off < n {
                    last = core.retire_mem(InstClass::VecStore, &[], d + off, &mut self.l3);
                    off += 64;
                }
                self.mem.fill(d, byte as u8, n)?;
                (RtVal::S(0), last)
            }
            Builtin::Memcmp => {
                let (a, bb, n) = (vals[0].s(), vals[1].s(), vals[2].s());
                let mut last = core.retire(InstClass::LibCall, &[deps]);
                let mut off = 0;
                while off < n {
                    core.retire_mem(InstClass::VecLoad, &[], a + off, &mut self.l3);
                    last = core.retire_mem(InstClass::VecLoad, &[], bb + off, &mut self.l3);
                    off += 64;
                }
                let r = match self.mem.cmp_ranges(a, bb, n)? {
                    std::cmp::Ordering::Less => -1i64,
                    std::cmp::Ordering::Equal => 0,
                    std::cmp::Ordering::Greater => 1,
                };
                (RtVal::S(r as u64), last)
            }
            Builtin::Output => {
                let (p, n) = (vals[0].s(), vals[1].s());
                self.mem.read_into(&mut self.output, p, n)?;
                (RtVal::S(0), core.retire(InstClass::LibCall, &[deps]))
            }
            Builtin::OutputI64 => {
                self.output.extend_from_slice(&vals[0].s().to_le_bytes());
                (RtVal::S(0), core.retire(InstClass::LibCall, &[deps]))
            }
            Builtin::OutputF64 => {
                self.output.extend_from_slice(&vals[0].s().to_le_bytes());
                (RtVal::S(0), core.retire(InstClass::LibCall, &[deps]))
            }
            Builtin::Sqrt => {
                let x = f64::from_bits(vals[0].s());
                (RtVal::S(x.sqrt().to_bits()), core.retire(InstClass::ScalarFpDiv, &[deps]))
            }
            Builtin::Fabs => {
                let x = f64::from_bits(vals[0].s());
                (RtVal::S(x.abs().to_bits()), core.retire(InstClass::ScalarFpAdd, &[deps]))
            }
            Builtin::Exp | Builtin::Log | Builtin::Pow | Builtin::Sin | Builtin::Cos | Builtin::Erf => {
                let x = f64::from_bits(vals[0].s());
                let y = f64::from_bits(vals[1].s());
                let r = match b {
                    Builtin::Exp => x.exp(),
                    Builtin::Log => x.ln(),
                    Builtin::Pow => x.powf(y),
                    Builtin::Sin => x.sin(),
                    Builtin::Cos => x.cos(),
                    Builtin::Erf => erf(x),
                    _ => unreachable!(),
                };
                // libm cost: a ~10-op dependent FP chain.
                let mut ready = deps;
                for _ in 0..10 {
                    ready = core.retire(InstClass::ScalarFpMul, &[ready]);
                }
                (RtVal::S(r.to_bits()), ready)
            }
            Builtin::InputPtr => (RtVal::S(INPUT_BASE), core.retire(InstClass::ScalarAlu, &[deps])),
            Builtin::InputLen => (RtVal::S(self.input_len), core.retire(InstClass::ScalarAlu, &[deps])),
            Builtin::NumThreads => {
                (RtVal::S(u64::from(self.cfg.threads.max(1))), core.retire(InstClass::ScalarAlu, &[deps]))
            }
            Builtin::Recover => {
                let m = metas.first().copied().unwrap_or(VMeta::ptr4());
                let y = vals[0].v(&m);
                let lanes = m.lanes as usize;
                let fixed = match self.cfg.recovery {
                    RecoveryPolicy::Simple => {
                        let value = majority_simple(&y, m.width, lanes);
                        if !y.lanes_agree(m.width, lanes) {
                            self.corrections += 1;
                        }
                        value
                    }
                    RecoveryPolicy::Extended => match majority_extended(&y, m.width, lanes) {
                        MajorityOutcome::Recovered { value, corrected } => {
                            if corrected {
                                self.corrections += 1;
                            }
                            value
                        }
                        MajorityOutcome::Tie => return Err(Trap::Unrecoverable),
                    },
                };
                // Slow path cost (§III-C): compare low lanes, broadcast.
                let mut ready = deps;
                for _ in 0..2 {
                    ready = core.retire(InstClass::Extract, &[ready]);
                }
                ready = core.retire(InstClass::ScalarAlu, &[ready]);
                ready = core.retire(InstClass::Broadcast, &[ready]);
                (RtVal::V(Ymm::splat(m.width, lanes, fixed)), ready)
            }
            Builtin::Heartbeat => {
                self.heartbeats += 1;
                let done = core.retire(InstClass::LibCall, &[deps]);
                // Timestamp in the emitting thread's clock domain —
                // serve entries are single-threaded, so for them this
                // is the request's virtual completion offset.
                self.heartbeat_cycles.push(done);
                (RtVal::S(0), done)
            }
            Builtin::Spawn | Builtin::Join | Builtin::Lock | Builtin::Unlock => {
                unreachable!("thread builtins handled separately")
            }
        };
        let fr = self.threads[t].frames.last_mut().expect("frame");
        if dst != NO_DST {
            fr.slots[dst as usize] = v;
            fr.ready[dst as usize] = done;
        }
        Ok(())
    }
}

/// The per-instruction reference interpreter as a pluggable
/// [`Engine`] — the baseline every other engine must match bit-for-bit.
pub struct ReferenceEngine;

/// Trace execution pinned to the portable scalar kernel table.
pub struct TraceScalarEngine;

/// Trace execution using the AVX2 kernel table when the host has AVX2
/// (bit-identical scalar fallback otherwise).
pub struct TraceSimdEngine;

impl<'p> Engine<Machine<'p>> for ReferenceEngine {
    type Error = Trap;

    fn kind(&self) -> EngineKind {
        EngineKind::Reference
    }

    fn step_quantum(&self, m: &mut Machine<'p>, thread: usize) -> Result<(), Trap> {
        m.step_quantum_ref(thread)
    }
}

impl<'p> Engine<Machine<'p>> for TraceScalarEngine {
    type Error = Trap;

    fn kind(&self) -> EngineKind {
        EngineKind::TraceScalar
    }

    fn step_quantum(&self, m: &mut Machine<'p>, thread: usize) -> Result<(), Trap> {
        m.step_quantum_trace_with(thread, kernels::table(false))
    }
}

impl<'p> Engine<Machine<'p>> for TraceSimdEngine {
    type Error = Trap;

    fn kind(&self) -> EngineKind {
        EngineKind::TraceSimd
    }

    fn step_quantum(&self, m: &mut Machine<'p>, thread: usize) -> Result<(), Trap> {
        m.step_quantum_trace_with(thread, kernels::table(elzar_engine::avx2_available()))
    }
}

#[inline]
fn read_op(fr: &Frame, op: &LOp) -> (RtVal, u64) {
    match op {
        LOp::Slot(s) => (fr.slots[*s as usize], fr.ready[*s as usize]),
        LOp::CS(v) => (RtVal::S(*v), 0),
        LOp::CV(y) => (RtVal::V(*y), 0),
    }
}

/// Transition `fr` to `target`, evaluating the target's phis against the
/// block being left. Shared by the per-instruction terminator path and
/// the trace executor so both take edges identically. `scratch` breaks
/// the read/write borrow on the frame (phi semantics: all incomings read
/// before any destination is written).
fn apply_edge<'p>(fr: &mut Frame<'p>, scratch: &mut Vec<(u32, RtVal, u64)>, target: u32) {
    let from = fr.block;
    let lb = &fr.lf.blocks[target as usize];
    fr.prev_block = from;
    fr.block = target;
    fr.ip = 0;
    fr.insts = &lb.insts;
    fr.term = &lb.term;
    let phis: &[LPhi] = &lb.phis;
    if phis.is_empty() {
        return;
    }
    scratch.clear();
    for phi in phis {
        if let Some((_, op)) = phi.incomings.iter().find(|(p, _)| *p == from) {
            let (v, r) = read_op(fr, op);
            scratch.push((phi.dst, v, r));
        }
    }
    for &(dst, v, r) in scratch.iter() {
        fr.slots[dst as usize] = v;
        fr.ready[dst as usize] = r;
    }
}

/// Vector-domain cast, shared by the reference interpreter and the trace
/// executor (result-value semantics only; retire is the caller's).
fn vec_cast(op: CastOp, from: &VMeta, to: &VMeta, va: RtVal) -> RtVal {
    if to.scalar {
        RtVal::S(scalar_cast(op, from, to, va.s()))
    } else if matches!(op, CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr) {
        // Pure reinterpretation: every lane's bits survive — essential so
        // a corrupted lane stays visible to the shuffle-xor-ptest check
        // after a float->int bitcast.
        RtVal::V(va.v(from))
    } else if from.lanes == to.lanes {
        // Lane-preserving conversion (same replication count).
        let src = va.v(from);
        let mut y = Ymm::ZERO;
        for i in 0..to.lanes as usize {
            y.set_lane(to.width, i, scalar_cast(op, from, to, src.lane(from.width, i)));
        }
        RtVal::V(y)
    } else {
        // Replication width changes (§III-D): convert lane 0,
        // re-replicate across the destination register.
        let lane0 = va.v(from).lane(from.width, 0);
        let c = scalar_cast(op, from, to, lane0);
        RtVal::V(Ymm::splat(to.width, to.lanes as usize, c))
    }
}

fn flip(v: RtVal, bit: u32, bound: u32) -> RtVal {
    match v {
        RtVal::S(x) => RtVal::S(x ^ (1u64 << (bit % bound.clamp(1, 64)))),
        RtVal::V(y) => RtVal::V(y.flip_bit(bit % bound.clamp(1, 256))),
    }
}

fn sext(v: u64, bits: u8) -> i64 {
    if bits >= 64 {
        v as i64
    } else {
        let sh = 64 - u32::from(bits);
        ((v << sh) as i64) >> sh
    }
}

fn scalar_bin(op: BinOp, m: &VMeta, a: u64, b: u64) -> Result<u64, Trap> {
    use BinOp::*;
    if m.float {
        let r = if m.bits == 32 {
            let (x, y) = (f32::from_bits(a as u32), f32::from_bits(b as u32));
            let r = match op {
                FAdd => x + y,
                FSub => x - y,
                FMul => x * y,
                FDiv => x / y,
                FMin => x.min(y),
                FMax => x.max(y),
                _ => unreachable!("int op on float meta"),
            };
            u64::from(r.to_bits())
        } else {
            let (x, y) = (f64::from_bits(a), f64::from_bits(b));
            let r = match op {
                FAdd => x + y,
                FSub => x - y,
                FMul => x * y,
                FDiv => x / y,
                FMin => x.min(y),
                FMax => x.max(y),
                _ => unreachable!("int op on float meta"),
            };
            r.to_bits()
        };
        return Ok(r);
    }
    let mask = m.mask();
    let (a, b) = (a & mask, b & mask);
    let bits = m.bits;
    let shift_mod = u32::from(bits.max(1));
    let r = match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        UDiv => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a / b
        }
        URem => {
            if b == 0 {
                return Err(Trap::DivByZero);
            }
            a % b
        }
        SDiv => {
            let (x, y) = (sext(a, bits), sext(b, bits));
            if y == 0 || (x == i64::MIN && y == -1) {
                return Err(Trap::DivByZero);
            }
            (x / y) as u64
        }
        SRem => {
            let (x, y) = (sext(a, bits), sext(b, bits));
            if y == 0 || (x == i64::MIN && y == -1) {
                return Err(Trap::DivByZero);
            }
            (x % y) as u64
        }
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Shl => a.wrapping_shl((b as u32) % shift_mod),
        LShr => a.wrapping_shr((b as u32) % shift_mod),
        AShr => (sext(a, bits) >> ((b as u32) % shift_mod).min(63)) as u64,
        UMin => a.min(b),
        UMax => a.max(b),
        SMin => {
            if sext(a, bits) <= sext(b, bits) {
                a
            } else {
                b
            }
        }
        SMax => {
            if sext(a, bits) >= sext(b, bits) {
                a
            } else {
                b
            }
        }
        FAdd | FSub | FMul | FDiv | FMin | FMax => unreachable!("float op on int meta"),
    };
    Ok(r & mask)
}

fn scalar_cmp(pred: CmpPred, m: &VMeta, a: u64, b: u64) -> bool {
    use CmpPred::*;
    if m.float {
        let (x, y) = if m.bits == 32 {
            (f64::from(f32::from_bits(a as u32)), f64::from(f32::from_bits(b as u32)))
        } else {
            (f64::from_bits(a), f64::from_bits(b))
        };
        return match pred {
            FOeq => x == y,
            FOne => x != y && !x.is_nan() && !y.is_nan(),
            FOlt => x < y,
            FOle => x <= y,
            FOgt => x > y,
            FOge => x >= y,
            _ => unreachable!("int predicate on float meta"),
        };
    }
    let mask = m.mask();
    let (a, b) = (a & mask, b & mask);
    let (sa, sb) = (sext(a, m.bits), sext(b, m.bits));
    match pred {
        Eq => a == b,
        Ne => a != b,
        Ult => a < b,
        Ule => a <= b,
        Ugt => a > b,
        Uge => a >= b,
        Slt => sa < sb,
        Sle => sa <= sb,
        Sgt => sa > sb,
        Sge => sa >= sb,
        FOeq | FOne | FOlt | FOle | FOgt | FOge => unreachable!("float predicate on int meta"),
    }
}

fn scalar_cast(op: CastOp, from: &VMeta, to: &VMeta, v: u64) -> u64 {
    match op {
        CastOp::Trunc => v & to.mask(),
        CastOp::ZExt => v & from.mask(),
        CastOp::SExt => (sext(v & from.mask(), from.bits) as u64) & to.mask(),
        CastOp::FpTrunc => u64::from((f64::from_bits(v) as f32).to_bits()),
        CastOp::FpExt => f64::from(f32::from_bits(v as u32)).to_bits(),
        CastOp::FpToSi => {
            let x = if from.bits == 32 { f64::from(f32::from_bits(v as u32)) } else { f64::from_bits(v) };
            (x as i64 as u64) & to.mask()
        }
        CastOp::FpToUi => {
            let x = if from.bits == 32 { f64::from(f32::from_bits(v as u32)) } else { f64::from_bits(v) };
            (x as u64) & to.mask()
        }
        CastOp::SiToFp => {
            let x = sext(v & from.mask(), from.bits) as f64;
            if to.bits == 32 {
                u64::from((x as f32).to_bits())
            } else {
                x.to_bits()
            }
        }
        CastOp::UiToFp => {
            let x = (v & from.mask()) as f64;
            if to.bits == 32 {
                u64::from((x as f32).to_bits())
            } else {
                x.to_bits()
            }
        }
        CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr => v,
    }
}

fn rmw(op: RmwOp, m: &VMeta, old: u64, val: u64) -> u64 {
    let mask = m.mask();
    let val = val & mask;
    let r = match op {
        RmwOp::Add => old.wrapping_add(val),
        RmwOp::Sub => old.wrapping_sub(val),
        RmwOp::And => old & val,
        RmwOp::Or => old | val,
        RmwOp::Xor => old ^ val,
        RmwOp::Xchg => val,
        RmwOp::UMax => old.max(val),
        RmwOp::UMin => old.min(val),
    };
    r & mask
}

/// Abramowitz & Stegun 7.1.26 rational approximation of `erf` (the host
/// stand-in for libm's `erf`, used by the Black–Scholes CNDF).
fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Program;
    use elzar_ir::builder::{c64, cf64, FuncBuilder};
    use elzar_ir::{BinOp, Builtin, Module, Ty};

    fn run(m: &Module, entry: &str) -> RunResult {
        let p = Program::lower(m);
        run_program(&p, entry, &[], MachineConfig::default())
    }

    fn run_input(m: &Module, entry: &str, input: &[u8]) -> RunResult {
        let p = Program::lower(m);
        run_program(&p, entry, input, MachineConfig::default())
    }

    #[test]
    fn returns_value() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let x = b.add(c64(40), c64(2));
        b.ret(x);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(42));
        assert!(r.cycles > 0);
    }

    #[test]
    fn loop_sums() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc_ptr = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc_ptr);
        b.counted_loop(c64(0), c64(100), |b, i| {
            let acc = b.load(Ty::I64, acc_ptr);
            let s = b.add(acc, i);
            b.store(Ty::I64, s, acc_ptr);
        });
        let fin = b.load(Ty::I64, acc_ptr);
        b.ret(fin);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(4950));
        assert!(r.counters.loads >= 100);
        assert!(r.counters.branches >= 100);
    }

    #[test]
    fn output_and_input_builtins() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let p = b.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let n = b.call_builtin(Builtin::InputLen, vec![], Ty::I64).unwrap();
        b.call_builtin(Builtin::Output, vec![p.into(), n.into()], Ty::Void);
        b.ret(n);
        m.add_func(b.finish());
        let r = run_input(&m, "main", b"hello");
        assert_eq!(r.outcome, RunOutcome::Exited(5));
        assert_eq!(r.output, b"hello");
    }

    #[test]
    fn vector_pipeline_checks_out() {
        // Replicate 7 into 4 lanes, add splat(35), check all lanes equal.
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let v7 = b.splat(c64(7), 4);
        let v35 = b.splat(c64(35), 4);
        let sum = b.bin(BinOp::Add, Ty::vec(Ty::I64, 4), v7, v35);
        let rot = b.shuffle(sum, vec![1, 2, 3, 0]);
        let diff = b.bin(BinOp::Xor, Ty::vec(Ty::I64, 4), sum, rot);
        let flags = b.ptest(diff);
        let ok = b.block("ok");
        let bad = b.block("bad");
        b.ptest_br(flags, ok, bad, bad);
        b.switch_to(ok);
        let x = b.extract(sum, 0);
        b.ret(x);
        b.switch_to(bad);
        b.ret(c64(-1));
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(42));
        assert!(r.counters.avx_instrs >= 5);
    }

    #[test]
    fn division_by_zero_traps() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let z = b.add(c64(0), c64(0));
        let d = b.bin(BinOp::SDiv, Ty::I64, c64(1), z);
        b.ret(d);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Trapped(Trap::DivByZero));
    }

    #[test]
    fn null_deref_segfaults() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let v = b.load(Ty::I64, elzar_ir::Operand::Imm(elzar_ir::Const::null()));
        b.ret(v);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert!(matches!(r.outcome, RunOutcome::Trapped(Trap::Segfault(_))));
    }

    #[test]
    fn function_calls_and_floats() {
        let mut m = Module::new("t");
        let mut g = FuncBuilder::new("square", vec![Ty::F64], Ty::F64);
        let x = g.param(0);
        let r = g.bin(BinOp::FMul, Ty::F64, x, x);
        g.ret(r);
        let gid = m.add_func(g.finish());
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let s = b.call(gid, vec![cf64(1.5)], Ty::F64).unwrap();
        b.call_builtin(Builtin::OutputF64, vec![s.into()], Ty::Void);
        b.ret(c64(0));
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(0));
        let bits = u64::from_le_bytes(r.output[..8].try_into().unwrap());
        assert_eq!(f64::from_bits(bits), 2.25);
    }

    #[test]
    fn threads_spawn_join_and_share_memory() {
        let mut m = Module::new("t");
        // worker(slot_ptr): *slot_ptr = 21; returns tid arg * 2.
        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        let arg = w.param(0);
        let two = w.mul(arg, c64(2));
        w.ret(two);
        let wid = m.add_func(w.finish());
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let t1 = b.call_builtin(Builtin::Spawn, vec![c64(wid.0 as i64), c64(10)], Ty::I64).unwrap();
        let t2 = b.call_builtin(Builtin::Spawn, vec![c64(wid.0 as i64), c64(11)], Ty::I64).unwrap();
        let r1 = b.call_builtin(Builtin::Join, vec![t1.into()], Ty::I64).unwrap();
        let r2 = b.call_builtin(Builtin::Join, vec![t2.into()], Ty::I64).unwrap();
        let s = b.add(r1, r2);
        b.ret(s);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(42));
        assert_eq!(r.thread_cycles.len(), 3);
    }

    #[test]
    fn locks_serialize_virtual_time() {
        // Two workers increment a shared counter under a mutex 1000 times.
        let mut m = Module::new("t");
        let mutex_off = m.alloc_global(8) as i64;
        let ctr_off = m.alloc_global(8) as i64;
        let mutex = crate::memory::GLOBAL_BASE as i64 + mutex_off;
        let ctr = crate::memory::GLOBAL_BASE as i64 + ctr_off;
        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        w.counted_loop(c64(0), c64(1000), |b, _i| {
            b.critical_section(c64(mutex), |b| {
                let v = b.load(Ty::I64, c64(ctr));
                let v2 = b.add(v, c64(1));
                b.store(Ty::I64, v2, c64(ctr));
            });
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let t1 = b.call_builtin(Builtin::Spawn, vec![c64(wid.0 as i64), c64(0)], Ty::I64).unwrap();
        let t2 = b.call_builtin(Builtin::Spawn, vec![c64(wid.0 as i64), c64(0)], Ty::I64).unwrap();
        b.call_builtin(Builtin::Join, vec![t1.into()], Ty::I64).unwrap();
        b.call_builtin(Builtin::Join, vec![t2.into()], Ty::I64).unwrap();
        let v = b.load(Ty::I64, c64(ctr));
        b.ret(v);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(2000));
    }

    #[test]
    fn atomics_count_correctly() {
        let mut m = Module::new("t");
        let ctr = crate::memory::GLOBAL_BASE as i64;
        let _ = m.alloc_global(8);
        let mut w = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
        w.counted_loop(c64(0), c64(500), |b, _i| {
            b.atomic_rmw(elzar_ir::RmwOp::Add, Ty::I64, c64(ctr), c64(1));
        });
        w.ret(c64(0));
        let wid = m.add_func(w.finish());
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let t1 = b.call_builtin(Builtin::Spawn, vec![c64(wid.0 as i64), c64(0)], Ty::I64).unwrap();
        let t2 = b.call_builtin(Builtin::Spawn, vec![c64(wid.0 as i64), c64(0)], Ty::I64).unwrap();
        b.call_builtin(Builtin::Join, vec![t1.into()], Ty::I64).unwrap();
        b.call_builtin(Builtin::Join, vec![t2.into()], Ty::I64).unwrap();
        let v = b.load(Ty::I64, c64(ctr));
        b.ret(v);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(1000));
    }

    #[test]
    fn step_limit_reports_hang() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let spin = b.block("spin");
        b.br(spin);
        b.switch_to(spin);
        b.br(spin);
        m.add_func(b.finish());
        let p = Program::lower(&m);
        let cfg = MachineConfig { step_limit: 10_000, ..MachineConfig::default() };
        let r = run_program(&p, "main", &[], cfg);
        assert_eq!(r.outcome, RunOutcome::StepLimit);
    }

    #[test]
    fn fault_injection_flips_destination() {
        // main returns x = 40 + 2; inject into the add's destination.
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let x = b.add(c64(40), c64(2));
        b.ret(x);
        m.add_func(b.finish());
        let p = Program::lower(&m);
        let cfg = MachineConfig { fault: Some(FaultPlan { index: 1, bit: 0 }), ..MachineConfig::default() };
        let r = run_program(&p, "main", &[], cfg);
        assert_eq!(r.outcome, RunOutcome::Exited(43)); // 42 ^ 1
    }

    #[test]
    fn recover_builtin_corrects_single_lane() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let v = b.splat(c64(7), 4);
        let bad = b.insert(v, c64(9), 2); // corrupt lane 2
        let fixed = b.call_builtin(Builtin::Recover, vec![bad.into()], Ty::vec(Ty::I64, 4)).unwrap();
        let x = b.extract(fixed, 2);
        b.ret(x);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(7));
        assert_eq!(r.corrections, 1);
    }

    #[test]
    fn recover_two_two_split_is_unrecoverable() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let v = b.splat(c64(7), 4);
        let v1 = b.insert(v, c64(9), 2);
        let v2 = b.insert(v1, c64(9), 3);
        let fixed = b.call_builtin(Builtin::Recover, vec![v2.into()], Ty::vec(Ty::I64, 4)).unwrap();
        let x = b.extract(fixed, 0);
        b.ret(x);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Trapped(Trap::Unrecoverable));
    }

    #[test]
    fn memcpy_and_memcmp() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let buf = b.call_builtin(Builtin::Malloc, vec![c64(4096)], Ty::Ptr).unwrap();
        let buf2 = b.call_builtin(Builtin::Malloc, vec![c64(4096)], Ty::Ptr).unwrap();
        b.call_builtin(Builtin::Memset, vec![buf.into(), c64(0xAB), c64(4096)], Ty::Void);
        b.call_builtin(Builtin::Memcpy, vec![buf2.into(), buf.into(), c64(4096)], Ty::Void);
        let c = b.call_builtin(Builtin::Memcmp, vec![buf.into(), buf2.into(), c64(4096)], Ty::I64).unwrap();
        b.ret(c);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(0));
        assert!(r.counters.stores >= 64, "memset/memcpy charge vector stores");
    }

    #[test]
    fn esoteric_int_widths_wrap_correctly() {
        // i9 arithmetic: 511 + 1 wraps to 0 (§III-D esoteric types).
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let t9 = Ty::int(9);
        let x = b.bin(BinOp::Add, t9.clone(), elzar_ir::Const::int(9, 511), elzar_ir::Const::int(9, 1));
        let wide = b.cast(elzar_ir::CastOp::ZExt, x, Ty::I64);
        b.ret(wide);
        m.add_func(b.finish());
        let r = run(&m, "main");
        assert_eq!(r.outcome, RunOutcome::Exited(0));
    }

    #[test]
    fn reenter_retains_memory_and_resets_run_state() {
        // `bump` increments a global counter and outputs the new value:
        // a resident machine must see the counter persist across
        // reenters while per-run counters restart from zero.
        let mut m = Module::new("t");
        let ctr = crate::memory::GLOBAL_BASE as i64;
        let _ = m.alloc_global(8);
        let mut b = FuncBuilder::new("bump", vec![], Ty::I64);
        let v = b.load(Ty::I64, c64(ctr));
        let v2 = b.add(v, c64(1));
        b.store(Ty::I64, v2, c64(ctr));
        b.call_builtin(Builtin::OutputI64, vec![v2.into()], Ty::Void);
        b.ret(c64(0));
        m.add_func(b.finish());
        let p = Program::lower(&m);
        let mut mach = Machine::start(&p, "bump", &[], MachineConfig::default());
        let o1 = mach.run_to_completion();
        let r1 = mach.result(o1);
        mach.reenter("bump", &[]);
        let o2 = mach.run_to_completion();
        let r2 = mach.result(o2);
        assert_eq!(r1.output, 1u64.to_le_bytes());
        assert_eq!(r2.output, 2u64.to_le_bytes(), "global state must survive reenter");
        assert_eq!(r1.steps, r2.steps, "per-run step count restarts at zero");
        assert_eq!(r1.eligible, r2.eligible);
    }

    #[test]
    fn reenter_replaces_input_and_zeroes_stale_tail() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let p = b.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        // Echo a fixed 8-byte window so a shorter second input exposes
        // any stale tail bytes.
        b.call_builtin(Builtin::Output, vec![p.into(), c64(8)], Ty::Void);
        b.ret(c64(0));
        m.add_func(b.finish());
        let prog = Program::lower(&m);
        let mut mach = Machine::start(&prog, "main", b"ABCDEFGH", MachineConfig::default());
        let o1 = mach.run_to_completion();
        assert_eq!(mach.result(o1).output, b"ABCDEFGH");
        mach.reenter("main", b"xy");
        let o2 = mach.run_to_completion();
        assert_eq!(mach.result(o2).output, b"xy\0\0\0\0\0\0");
    }

    #[test]
    fn reenter_gives_fresh_zeroed_stacks() {
        // `dirty` fills an alloca with garbage; `probe` allocas the same
        // amount and reads before writing. On a reentered machine the
        // probe must see zeros, exactly like a fresh machine would —
        // otherwise execution would depend on invocation history.
        let mut m = Module::new("t");
        let mut d = FuncBuilder::new("dirty", vec![], Ty::I64);
        let buf = d.alloca(Ty::I64, c64(8));
        d.counted_loop(c64(0), c64(8), |b, i| {
            let p = b.gep(buf, i, 8);
            b.store(Ty::I64, c64(-1), p);
        });
        d.ret(c64(0));
        m.add_func(d.finish());
        let mut pr = FuncBuilder::new("probe", vec![], Ty::I64);
        let buf = pr.alloca(Ty::I64, c64(8));
        let p7 = pr.gep(buf, c64(7), 8);
        let v = pr.load(Ty::I64, p7);
        pr.ret(v);
        m.add_func(pr.finish());
        let prog = Program::lower(&m);
        let mut mach = Machine::start(&prog, "dirty", &[], MachineConfig::default());
        assert_eq!(mach.run_to_completion(), RunOutcome::Exited(0));
        mach.reenter("probe", &[]);
        assert_eq!(mach.run_to_completion(), RunOutcome::Exited(0), "stale stack bytes leaked");
    }

    #[test]
    fn reenter_matches_fresh_start_when_memory_untouched() {
        // A request that only reads its input behaves bit-identically on
        // a reentered machine and a fresh one (warm L3 may change cycle
        // counts, but outputs/steps/eligible must agree).
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let p = b.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
        let v = b.load(Ty::I64, p);
        let d = b.mul(v, c64(3));
        b.call_builtin(Builtin::OutputI64, vec![d.into()], Ty::Void);
        b.ret(c64(0));
        m.add_func(b.finish());
        let prog = Program::lower(&m);
        let inp = 1234u64.to_le_bytes();
        let fresh = run_program(&prog, "main", &inp, MachineConfig::default());
        let mut mach = Machine::start(&prog, "main", &[0u8; 8], MachineConfig::default());
        let _ = mach.run_to_completion();
        mach.reenter("main", &inp);
        let o = mach.run_to_completion();
        let re = mach.result(o);
        assert_eq!(re.outcome, fresh.outcome);
        assert_eq!(re.output, fresh.output);
        assert_eq!(re.steps, fresh.steps);
        assert_eq!(re.eligible, fresh.eligible);
    }

    #[test]
    fn deterministic_across_runs() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(1), acc);
        b.counted_loop(c64(0), c64(5000), |b, i| {
            let v = b.load(Ty::I64, acc);
            let v2 = b.mul(v, c64(3));
            let v3 = b.add(v2, i);
            b.store(Ty::I64, v3, acc);
        });
        let v = b.load(Ty::I64, acc);
        b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
        b.ret(c64(0));
        m.add_func(b.finish());
        let r1 = run(&m, "main");
        let r2 = run(&m, "main");
        assert_eq!(r1.output, r2.output);
        assert_eq!(r1.cycles, r2.cycles);
        assert_eq!(r1.steps, r2.steps);
        assert_eq!(r1.eligible, r2.eligible);
    }

    /// A mixed scalar/vector/control/memory program that exercises every
    /// trace-op family, for cross-engine comparison.
    fn engine_probe_module() -> Module {
        let mut m = Module::new("probe");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let acc = b.alloca(Ty::I64, c64(1));
        b.store(Ty::I64, c64(0), acc);
        b.counted_loop(c64(0), c64(200), |b, i| {
            let v4 = b.splat(i, 4);
            let m3 = b.splat(c64(3), 4);
            let prod = b.bin(BinOp::Mul, Ty::vec(Ty::I64, 4), v4, m3);
            let rot = b.shuffle(prod, vec![1, 2, 3, 0]);
            let diff = b.bin(BinOp::Xor, Ty::vec(Ty::I64, 4), prod, rot);
            let flags = b.ptest(diff);
            let ok = b.block("ok");
            let bad = b.block("bad");
            b.ptest_br(flags, ok, bad, bad);
            b.switch_to(bad);
            b.ret(c64(-1));
            b.switch_to(ok);
            let lane = b.extract(prod, 2);
            let acc_v = b.load(Ty::I64, acc);
            let s = b.add(acc_v, lane);
            b.store(Ty::I64, s, acc);
        });
        let fin = b.load(Ty::I64, acc);
        b.call_builtin(Builtin::OutputI64, vec![fin.into()], Ty::Void);
        b.ret(fin);
        m.add_func(b.finish());
        m
    }

    #[test]
    fn engines_agree_bit_for_bit() {
        let m = engine_probe_module();
        let p = Program::lower(&m);
        let runs: Vec<RunResult> =
            [EngineKind::Reference, EngineKind::Trace, EngineKind::TraceScalar, EngineKind::TraceSimd]
                .iter()
                .map(|&engine| run_program(&p, "main", &[], MachineConfig { engine, ..Default::default() }))
                .collect();
        let base = &runs[0];
        assert_eq!(base.outcome, RunOutcome::Exited(3 * 199 * 200 / 2));
        for r in &runs[1..] {
            assert_eq!(r.outcome, base.outcome);
            assert_eq!(r.output, base.output);
            assert_eq!(r.cycles, base.cycles);
            assert_eq!(r.steps, base.steps);
            assert_eq!(r.eligible, base.eligible);
            assert_eq!(r.counters, base.counters);
            assert_eq!(r.thread_cycles, base.thread_cycles);
        }
    }

    #[test]
    fn engine_trait_objects_drive_the_machine() {
        let m = engine_probe_module();
        let p = Program::lower(&m);
        let reference = run_program(
            &p,
            "main",
            &[],
            MachineConfig { engine: EngineKind::Reference, ..Default::default() },
        );
        for eng in
            [&ReferenceEngine as &dyn Engine<Machine, Error = Trap>, &TraceScalarEngine, &TraceSimdEngine]
        {
            let mut mach = Machine::start(&p, "main", &[], MachineConfig::default());
            // Drive thread 0 manually through the trait; the probe is
            // single-threaded so this is the whole schedule.
            let outcome = loop {
                match eng.step_quantum(&mut mach, 0) {
                    Ok(()) => {}
                    Err(t) => break RunOutcome::Trapped(t),
                }
                if let Some(o) = mach.run_round() {
                    break o;
                }
            };
            let r = mach.result(outcome);
            assert_eq!(r.outcome, reference.outcome, "engine {:?}", eng.kind());
            assert_eq!(r.output, reference.output);
        }
    }

    #[test]
    fn fault_campaign_is_engine_invariant() {
        let m = engine_probe_module();
        let p = Program::lower(&m);
        for index in [1, 7, 50, 301, 1203] {
            let fault = Some(FaultPlan { index, bit: 17 });
            let mut outcomes = vec![];
            for engine in [EngineKind::Reference, EngineKind::TraceScalar, EngineKind::TraceSimd] {
                let cfg = MachineConfig { engine, fault, ..Default::default() };
                let r = run_program(&p, "main", &[], cfg);
                outcomes.push((r.outcome, r.output.clone(), r.cycles, r.steps, r.eligible));
            }
            assert_eq!(outcomes[0], outcomes[1], "fault @{index}: reference vs trace-scalar");
            assert_eq!(outcomes[0], outcomes[2], "fault @{index}: reference vs trace-simd");
        }
    }
}
