//! Flat process memory with a fixed layout and trap-reporting accesses.
//!
//! The VM models a single protected (ECC) memory shared by all threads —
//! the paper's fault model excludes memory faults (§III-A), so memory holds
//! exactly one copy of the state while registers are replicated.
//!
//! Layout (byte addresses):
//!
//! ```text
//! 0x0000_0000 .. 0x0000_1000   unmapped null page (access ⇒ segfault)
//! 0x0001_0000 .. +globals      module globals
//! 0x0100_0000 .. +input        read-only input segment
//! 0x0400_0000 .. stacks        heap (bump allocator, grows up)
//! top - N*2MB .. top           per-thread stacks (grow down)
//! ```

use std::fmt;

/// Base address of the global data segment.
pub const GLOBAL_BASE: u64 = 0x0001_0000;
/// Base address of the input segment.
pub const INPUT_BASE: u64 = 0x0100_0000;
/// Base address of the heap.
pub const HEAP_BASE: u64 = 0x0400_0000;
/// Per-thread stack size.
pub const STACK_SIZE: u64 = 2 * 1024 * 1024;
/// Default total memory size.
pub const DEFAULT_MEM_SIZE: u64 = 0x1000_0000; // 256 MB

/// Faults detected by the machine ("OS-detected" outcomes in Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trap {
    /// Out-of-range or null-page access.
    Segfault(u64),
    /// Misaligned scalar access.
    Misaligned(u64),
    /// Integer division by zero (or `MIN / -1`).
    DivByZero,
    /// Reached an `unreachable` terminator.
    Unreachable,
    /// Heap exhausted.
    OutOfMemory,
    /// Stack overflow.
    StackOverflow,
    /// ELZAR extended recovery found a 2+2 split — no majority (§III-C).
    Unrecoverable,
    /// Indirect spawn/call to a bad function index.
    BadFunction,
    /// Every live thread is blocked.
    Deadlock,
    /// Call depth exceeded.
    CallDepth,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Segfault(a) => write!(f, "segmentation fault at {a:#x}"),
            Trap::Misaligned(a) => write!(f, "misaligned access at {a:#x}"),
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::Unreachable => write!(f, "executed unreachable"),
            Trap::OutOfMemory => write!(f, "heap exhausted"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::Unrecoverable => write!(f, "majority voting found no majority (2+2 split)"),
            Trap::BadFunction => write!(f, "invalid function reference"),
            Trap::Deadlock => write!(f, "all threads blocked"),
            Trap::CallDepth => write!(f, "call depth exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

/// Flat byte-addressable memory.
#[derive(Clone)]
pub struct Memory {
    bytes: Vec<u8>,
    heap_next: u64,
    heap_limit: u64,
}

impl Memory {
    /// Create memory of `size` bytes, install `globals` at
    /// [`GLOBAL_BASE`] and `input` at [`INPUT_BASE`], and reserve
    /// `max_threads` stacks at the top.
    ///
    /// # Panics
    /// Panics if the segments do not fit.
    pub fn new(size: u64, globals: &[u8], input: &[u8], max_threads: u32) -> Memory {
        assert!(GLOBAL_BASE + globals.len() as u64 <= INPUT_BASE, "globals too large");
        assert!(INPUT_BASE + input.len() as u64 <= HEAP_BASE, "input too large");
        let stacks = u64::from(max_threads) * STACK_SIZE;
        assert!(HEAP_BASE + stacks < size, "memory too small");
        let mut bytes = vec![0u8; size as usize];
        bytes[GLOBAL_BASE as usize..GLOBAL_BASE as usize + globals.len()].copy_from_slice(globals);
        bytes[INPUT_BASE as usize..INPUT_BASE as usize + input.len()].copy_from_slice(input);
        Memory { bytes, heap_next: HEAP_BASE, heap_limit: size - stacks }
    }

    /// Total size.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Initial stack pointer for thread `tid` (stacks grow down).
    pub fn stack_top(&self, tid: u32) -> u64 {
        self.size() - u64::from(tid) * STACK_SIZE
    }

    /// Lowest valid stack address for thread `tid`.
    pub fn stack_limit(&self, tid: u32) -> u64 {
        self.stack_top(tid) - STACK_SIZE
    }

    /// Bump-allocate `size` heap bytes (32-byte aligned).
    ///
    /// # Errors
    /// [`Trap::OutOfMemory`] when the heap meets the stack region.
    pub fn malloc(&mut self, size: u64) -> Result<u64, Trap> {
        let base = (self.heap_next + 31) & !31;
        let end = base.checked_add(size).ok_or(Trap::OutOfMemory)?;
        if end > self.heap_limit {
            return Err(Trap::OutOfMemory);
        }
        self.heap_next = end;
        Ok(base)
    }

    fn check(&self, addr: u64, size: u64) -> Result<(), Trap> {
        if addr < 0x1000 {
            return Err(Trap::Segfault(addr));
        }
        let end = addr.checked_add(size).ok_or(Trap::Segfault(addr))?;
        if end > self.bytes.len() as u64 {
            return Err(Trap::Segfault(addr));
        }
        Ok(())
    }

    /// Load `size ∈ {1,2,4,8}` bytes little-endian (zero-extended).
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn load(&self, addr: u64, size: u32) -> Result<u64, Trap> {
        self.check(addr, u64::from(size))?;
        let a = addr as usize;
        let mut v = 0u64;
        for i in 0..size as usize {
            v |= u64::from(self.bytes[a + i]) << (8 * i);
        }
        Ok(v)
    }

    /// Store `size ∈ {1,2,4,8}` bytes little-endian.
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn store(&mut self, addr: u64, size: u32, val: u64) -> Result<(), Trap> {
        self.check(addr, u64::from(size))?;
        let a = addr as usize;
        for i in 0..size as usize {
            self.bytes[a + i] = (val >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Borrow a byte range.
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn slice(&self, addr: u64, len: u64) -> Result<&[u8], Trap> {
        self.check(addr, len)?;
        Ok(&self.bytes[addr as usize..(addr + len) as usize])
    }

    /// Mutably borrow a byte range.
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn slice_mut(&mut self, addr: u64, len: u64) -> Result<&mut [u8], Trap> {
        self.check(addr, len)?;
        Ok(&mut self.bytes[addr as usize..(addr + len) as usize])
    }

    /// memmove-style copy (handles overlap).
    ///
    /// # Errors
    /// Traps when either range is invalid.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), Trap> {
        self.check(src, len)?;
        self.check(dst, len)?;
        self.bytes.copy_within(src as usize..(src + len) as usize, dst as usize);
        Ok(())
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Memory({} bytes, heap at {:#x})", self.bytes.len(), self.heap_next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(DEFAULT_MEM_SIZE, &[1, 2, 3, 4], &[9, 9], 4)
    }

    #[test]
    fn layout_places_segments() {
        let m = mem();
        assert_eq!(m.load(GLOBAL_BASE, 4).unwrap(), 0x04030201);
        assert_eq!(m.load(INPUT_BASE, 2).unwrap(), 0x0909);
    }

    #[test]
    fn null_page_faults() {
        let m = mem();
        assert_eq!(m.load(0, 8), Err(Trap::Segfault(0)));
        assert_eq!(m.load(0xFFF, 1), Err(Trap::Segfault(0xFFF)));
        assert!(m.load(0x1000 + GLOBAL_BASE, 1).is_ok());
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = mem();
        let top = m.size();
        assert!(matches!(m.load(top, 1), Err(Trap::Segfault(_))));
        assert!(matches!(m.store(top - 4, 8, 1), Err(Trap::Segfault(_))));
        assert!(m.store(top - 8, 8, 1).is_ok());
    }

    #[test]
    fn load_store_roundtrip_le() {
        let mut m = mem();
        m.store(HEAP_BASE, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load(HEAP_BASE, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.load(HEAP_BASE, 1).unwrap(), 0x88);
        assert_eq!(m.load(HEAP_BASE + 7, 1).unwrap(), 0x11);
        m.store(HEAP_BASE + 16, 2, 0xABCD).unwrap();
        assert_eq!(m.load(HEAP_BASE + 16, 4).unwrap(), 0xABCD);
    }

    #[test]
    fn malloc_bumps_and_exhausts() {
        let mut m = Memory::new(HEAP_BASE + 4 * STACK_SIZE + 1024 * 1024, &[], &[], 1);
        let a = m.malloc(100).unwrap();
        let b = m.malloc(100).unwrap();
        assert_eq!(a % 32, 0);
        assert!(b >= a + 100);
        assert!(m.malloc(1 << 40).is_err());
    }

    #[test]
    fn stacks_are_disjoint_per_thread() {
        let m = mem();
        assert_eq!(m.stack_top(0), m.size());
        assert_eq!(m.stack_top(1), m.size() - STACK_SIZE);
        assert!(m.stack_limit(0) >= m.stack_top(1));
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        let mut m = mem();
        for i in 0..16 {
            m.store(HEAP_BASE + i, 1, i).unwrap();
        }
        m.copy(HEAP_BASE + 4, HEAP_BASE, 12).unwrap();
        assert_eq!(m.load(HEAP_BASE + 4, 1).unwrap(), 0);
        assert_eq!(m.load(HEAP_BASE + 15, 1).unwrap(), 11);
    }
}
