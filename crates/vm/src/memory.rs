//! Flat process memory with a fixed layout and trap-reporting accesses.
//!
//! The VM models a single protected (ECC) memory shared by all threads —
//! the paper's fault model excludes memory faults (§III-A), so memory holds
//! exactly one copy of the state while registers are replicated.
//!
//! Layout (byte addresses):
//!
//! ```text
//! 0x0000_0000 .. 0x0000_1000   unmapped null page (access ⇒ segfault)
//! 0x0001_0000 .. +globals      module globals
//! 0x0100_0000 .. +input        read-only input segment
//! 0x0400_0000 .. stacks        heap (bump allocator, grows up)
//! top - N*2MB .. top           per-thread stacks (grow down)
//! ```
//!
//! Although the *semantics* are a single zero-initialized flat array,
//! the *representation* is segmented: each region is backed by its own
//! vector that grows on first write, and per-thread stacks materialize
//! on first touch. Untouched bytes read as zero, exactly as the flat
//! array did. This keeps a `Memory` clone proportional to the bytes a
//! program actually used — the key enabler for the fault-injection
//! campaign's checkpoint sharing, which snapshots the whole machine at
//! every injection point instead of re-executing the prefix.

use std::fmt;

/// Base address of the global data segment.
pub const GLOBAL_BASE: u64 = 0x0001_0000;
/// Base address of the input segment.
pub const INPUT_BASE: u64 = 0x0100_0000;
/// Base address of the heap.
pub const HEAP_BASE: u64 = 0x0400_0000;
/// Per-thread stack size.
pub const STACK_SIZE: u64 = 2 * 1024 * 1024;
/// Default total memory size.
pub const DEFAULT_MEM_SIZE: u64 = 0x1000_0000; // 256 MB
/// Lowest mapped address (end of the null page).
const LOW_BASE: u64 = 0x1000;

/// Faults detected by the machine ("OS-detected" outcomes in Table I).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trap {
    /// Out-of-range or null-page access.
    Segfault(u64),
    /// Misaligned scalar access.
    Misaligned(u64),
    /// Integer division by zero (or `MIN / -1`).
    DivByZero,
    /// Reached an `unreachable` terminator.
    Unreachable,
    /// Heap exhausted.
    OutOfMemory,
    /// Stack overflow.
    StackOverflow,
    /// ELZAR extended recovery found a 2+2 split — no majority (§III-C).
    Unrecoverable,
    /// Indirect spawn/call to a bad function index.
    BadFunction,
    /// Every live thread is blocked.
    Deadlock,
    /// Call depth exceeded.
    CallDepth,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Segfault(a) => write!(f, "segmentation fault at {a:#x}"),
            Trap::Misaligned(a) => write!(f, "misaligned access at {a:#x}"),
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::Unreachable => write!(f, "executed unreachable"),
            Trap::OutOfMemory => write!(f, "heap exhausted"),
            Trap::StackOverflow => write!(f, "stack overflow"),
            Trap::Unrecoverable => write!(f, "majority voting found no majority (2+2 split)"),
            Trap::BadFunction => write!(f, "invalid function reference"),
            Trap::Deadlock => write!(f, "all threads blocked"),
            Trap::CallDepth => write!(f, "call depth exceeded"),
        }
    }
}

impl std::error::Error for Trap {}

/// Flat byte-addressable memory (segmented representation).
#[derive(Clone)]
pub struct Memory {
    /// `[LOW_BASE, GLOBAL_BASE)` — rarely touched, grows on write.
    low: Vec<u8>,
    /// `[GLOBAL_BASE, INPUT_BASE)` — grows on write past the initial
    /// globals image.
    globals: Vec<u8>,
    /// `[INPUT_BASE, HEAP_BASE)` — grows on write past the input image.
    input: Vec<u8>,
    /// `[HEAP_BASE, stacks_base)` — grows on write.
    heap: Vec<u8>,
    /// `[stacks_base, size)`, one `STACK_SIZE` chunk per thread slot,
    /// materialized (fully) on first touch.
    stacks: Vec<Option<Box<[u8]>>>,
    stacks_base: u64,
    size: u64,
    heap_next: u64,
    heap_limit: u64,
}

/// Which backing segment an address falls into.
enum Region {
    Low,
    Globals,
    Input,
    Heap,
    /// `(chunk index, offset within chunk)`.
    Stack(usize, usize),
}

impl Memory {
    /// Create memory of `size` bytes, install `globals` at
    /// [`GLOBAL_BASE`] and `input` at [`INPUT_BASE`], and reserve
    /// `max_threads` stacks at the top.
    ///
    /// # Panics
    /// Panics if the segments do not fit.
    pub fn new(size: u64, globals: &[u8], input: &[u8], max_threads: u32) -> Memory {
        assert!(GLOBAL_BASE + globals.len() as u64 <= INPUT_BASE, "globals too large");
        assert!(INPUT_BASE + input.len() as u64 <= HEAP_BASE, "input too large");
        let stacks = u64::from(max_threads) * STACK_SIZE;
        assert!(HEAP_BASE + stacks < size, "memory too small");
        Memory {
            low: Vec::new(),
            globals: globals.to_vec(),
            input: input.to_vec(),
            heap: Vec::new(),
            stacks: vec![None; max_threads as usize],
            stacks_base: size - stacks,
            size,
            heap_next: HEAP_BASE,
            heap_limit: size - stacks,
        }
    }

    /// Total size.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Drop all materialized per-thread stacks, so they read as zero
    /// again. Used by [`crate::Machine::reenter`]: stacks are
    /// per-invocation scratch, and letting a new entry observe the
    /// previous invocation's stack bytes would make execution depend on
    /// which requests ran on the machine before — exactly the history
    /// dependence the serving runtime's determinism contract excludes.
    pub fn reset_stacks(&mut self) {
        for s in &mut self.stacks {
            *s = None;
        }
    }

    /// Replace the input image in place: write `input` at
    /// [`INPUT_BASE`] and zero whatever tail of the previous image
    /// extends past it — exactly what overwriting a flat memory would
    /// leave behind. Used by [`crate::Machine::reenter`] to feed a
    /// resident VM its next request without rebuilding memory.
    ///
    /// # Panics
    /// Panics if `input` does not fit in the input segment.
    pub fn set_input(&mut self, input: &[u8]) {
        assert!(INPUT_BASE + input.len() as u64 <= HEAP_BASE, "input too large");
        if self.input.len() < input.len() {
            self.input.resize(input.len(), 0);
        }
        self.input[..input.len()].copy_from_slice(input);
        self.input[input.len()..].fill(0);
    }

    /// Replace the input image with a *multi-request* segment: a `u64`
    /// record count at [`INPUT_BASE`], followed by the concatenated
    /// `parts` (one encoded request each, fixed stride per program).
    /// The tail of any previous image is zeroed exactly as
    /// [`Memory::set_input`] does. Returns the total image length.
    ///
    /// This is the layout batched serve entries consume: they read the
    /// count from the first word and iterate the records at
    /// `INPUT_BASE + 8`. Used by [`crate::Machine::reenter_batch`].
    ///
    /// # Panics
    /// Panics if the combined image does not fit in the input segment.
    pub fn set_input_parts(&mut self, parts: &[&[u8]]) -> usize {
        let total = 8 + parts.iter().map(|p| p.len()).sum::<usize>();
        assert!(INPUT_BASE + total as u64 <= HEAP_BASE, "batched input too large");
        if self.input.len() < total {
            self.input.resize(total, 0);
        }
        self.input[..8].copy_from_slice(&(parts.len() as u64).to_le_bytes());
        let mut off = 8;
        for p in parts {
            self.input[off..off + p.len()].copy_from_slice(p);
            off += p.len();
        }
        self.input[off..].fill(0);
        total
    }

    /// Initial stack pointer for thread `tid` (stacks grow down).
    pub fn stack_top(&self, tid: u32) -> u64 {
        self.size - u64::from(tid) * STACK_SIZE
    }

    /// Lowest valid stack address for thread `tid`.
    pub fn stack_limit(&self, tid: u32) -> u64 {
        self.stack_top(tid) - STACK_SIZE
    }

    /// Bytes currently materialized across all segments (diagnostic;
    /// roughly the cost of cloning this memory).
    pub fn resident_bytes(&self) -> u64 {
        let stacks: usize = self.stacks.iter().flatten().map(|c| c.len()).sum();
        (self.low.len() + self.globals.len() + self.input.len() + self.heap.len() + stacks) as u64
    }

    /// Bump-allocate `size` heap bytes (32-byte aligned).
    ///
    /// # Errors
    /// [`Trap::OutOfMemory`] when the heap meets the stack region.
    pub fn malloc(&mut self, size: u64) -> Result<u64, Trap> {
        let base = (self.heap_next + 31) & !31;
        let end = base.checked_add(size).ok_or(Trap::OutOfMemory)?;
        if end > self.heap_limit {
            return Err(Trap::OutOfMemory);
        }
        self.heap_next = end;
        Ok(base)
    }

    #[inline]
    fn check(&self, addr: u64, size: u64) -> Result<(), Trap> {
        if addr < LOW_BASE {
            return Err(Trap::Segfault(addr));
        }
        let end = addr.checked_add(size).ok_or(Trap::Segfault(addr))?;
        if end > self.size {
            return Err(Trap::Segfault(addr));
        }
        Ok(())
    }

    #[inline]
    fn region_of(&self, addr: u64) -> Region {
        if addr >= self.stacks_base {
            let off = addr - self.stacks_base;
            Region::Stack((off / STACK_SIZE) as usize, (off % STACK_SIZE) as usize)
        } else if addr >= HEAP_BASE {
            Region::Heap
        } else if addr >= INPUT_BASE {
            Region::Input
        } else if addr >= GLOBAL_BASE {
            Region::Globals
        } else {
            Region::Low
        }
    }

    /// End (exclusive) of the region containing `addr`.
    fn region_end(&self, addr: u64) -> u64 {
        if addr >= self.stacks_base {
            let chunk = (addr - self.stacks_base) / STACK_SIZE;
            self.stacks_base + (chunk + 1) * STACK_SIZE
        } else if addr >= HEAP_BASE {
            self.stacks_base
        } else if addr >= INPUT_BASE {
            HEAP_BASE
        } else if addr >= GLOBAL_BASE {
            INPUT_BASE
        } else {
            GLOBAL_BASE
        }
    }

    /// Immutable view of the backing bytes for the region containing
    /// `addr` (may be shorter than the region — the rest reads as 0).
    #[inline]
    fn backing(&self, addr: u64) -> (&[u8], usize) {
        match self.region_of(addr) {
            Region::Low => (&self.low, (addr - LOW_BASE) as usize),
            Region::Globals => (&self.globals, (addr - GLOBAL_BASE) as usize),
            Region::Input => (&self.input, (addr - INPUT_BASE) as usize),
            Region::Heap => (&self.heap, (addr - HEAP_BASE) as usize),
            Region::Stack(chunk, off) => match &self.stacks[chunk] {
                Some(c) => (&c[..], off),
                None => (&[], off),
            },
        }
    }

    /// Mutable backing for the region containing `addr`, grown so that
    /// `off + len` is in range. `len` must not cross the region end
    /// (checked by the caller via [`Memory::region_end`]).
    fn backing_mut(&mut self, addr: u64, len: usize) -> (&mut [u8], usize) {
        #[inline]
        fn ensure(v: &mut Vec<u8>, need: usize, cap: usize) {
            if v.len() < need {
                // Amortize growth; never exceed the region size.
                let target = need.max(v.len() * 2).min(cap);
                v.resize(target, 0);
            }
        }
        match self.region_of(addr) {
            Region::Low => {
                let off = (addr - LOW_BASE) as usize;
                ensure(&mut self.low, off + len, (GLOBAL_BASE - LOW_BASE) as usize);
                (&mut self.low, off)
            }
            Region::Globals => {
                let off = (addr - GLOBAL_BASE) as usize;
                ensure(&mut self.globals, off + len, (INPUT_BASE - GLOBAL_BASE) as usize);
                (&mut self.globals, off)
            }
            Region::Input => {
                let off = (addr - INPUT_BASE) as usize;
                ensure(&mut self.input, off + len, (HEAP_BASE - INPUT_BASE) as usize);
                (&mut self.input, off)
            }
            Region::Heap => {
                let off = (addr - HEAP_BASE) as usize;
                ensure(&mut self.heap, off + len, (self.stacks_base - HEAP_BASE) as usize);
                (&mut self.heap, off)
            }
            Region::Stack(chunk, off) => {
                let c = self.stacks[chunk]
                    .get_or_insert_with(|| vec![0u8; STACK_SIZE as usize].into_boxed_slice());
                (&mut c[..], off)
            }
        }
    }

    /// Load `size ∈ {1,2,4,8}` bytes little-endian (zero-extended).
    ///
    /// # Errors
    /// Traps on out-of-range access.
    #[inline]
    pub fn load(&self, addr: u64, size: u32) -> Result<u64, Trap> {
        self.check(addr, u64::from(size))?;
        let (b, off) = self.backing(addr);
        // Fast path: fully materialized and inside one region.
        if off + size as usize <= b.len() && addr + u64::from(size) <= self.region_end(addr) {
            let mut v = 0u64;
            for i in 0..size as usize {
                v |= u64::from(b[off + i]) << (8 * i);
            }
            return Ok(v);
        }
        // Slow path: unmaterialized tail bytes read as zero; region
        // crossings are assembled byte by byte.
        let mut v = 0u64;
        for i in 0..u64::from(size) {
            let (b, o) = self.backing(addr + i);
            let byte = b.get(o).copied().unwrap_or(0);
            v |= u64::from(byte) << (8 * i);
        }
        Ok(v)
    }

    /// Store `size ∈ {1,2,4,8}` bytes little-endian.
    ///
    /// # Errors
    /// Traps on out-of-range access.
    #[inline]
    pub fn store(&mut self, addr: u64, size: u32, val: u64) -> Result<(), Trap> {
        self.check(addr, u64::from(size))?;
        if addr + u64::from(size) <= self.region_end(addr) {
            let (b, off) = self.backing_mut(addr, size as usize);
            for i in 0..size as usize {
                b[off + i] = (val >> (8 * i)) as u8;
            }
            return Ok(());
        }
        // Rare region-crossing store.
        for i in 0..u64::from(size) {
            let (b, off) = self.backing_mut(addr + i, 1);
            b[off] = (val >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Copy `len` bytes starting at `addr` into `out`.
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn read_into(&self, out: &mut Vec<u8>, addr: u64, len: u64) -> Result<(), Trap> {
        self.check(addr, len)?;
        let mut a = addr;
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(self.region_end(a) - a);
            let (b, off) = self.backing(a);
            let have = b.len().saturating_sub(off).min(n as usize);
            out.extend_from_slice(&b[off..off + have]);
            // Unmaterialized bytes read as zero.
            out.resize(out.len() + (n as usize - have), 0);
            a += n;
            remaining -= n;
        }
        Ok(())
    }

    /// Fill `[addr, addr+len)` with `byte`.
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn fill(&mut self, addr: u64, byte: u8, len: u64) -> Result<(), Trap> {
        self.check(addr, len)?;
        let mut a = addr;
        let mut remaining = len;
        while remaining > 0 {
            let n = remaining.min(self.region_end(a) - a);
            let (b, off) = self.backing_mut(a, n as usize);
            b[off..off + n as usize].fill(byte);
            a += n;
            remaining -= n;
        }
        Ok(())
    }

    /// Lexicographic comparison of two ranges (memcmp).
    ///
    /// # Errors
    /// Traps when either range is invalid.
    pub fn cmp_ranges(&self, a: u64, b: u64, len: u64) -> Result<std::cmp::Ordering, Trap> {
        self.check(a, len)?;
        self.check(b, len)?;
        // Byte-wise is fine: memcmp sizes are small and this is exact.
        for i in 0..len {
            let (ba, oa) = self.backing(a + i);
            let (bb, ob) = self.backing(b + i);
            let xa = ba.get(oa).copied().unwrap_or(0);
            let xb = bb.get(ob).copied().unwrap_or(0);
            match xa.cmp(&xb) {
                std::cmp::Ordering::Equal => {}
                other => return Ok(other),
            }
        }
        Ok(std::cmp::Ordering::Equal)
    }

    /// Borrow a byte range. Narrower than [`Memory::load`]'s address
    /// space: the range must lie within one backing region *and*
    /// already be materialized, since an immutable borrow cannot grow
    /// the backing. For arbitrary valid ranges (crossing regions or
    /// touching never-written zero bytes) use [`Memory::read_into`] /
    /// [`Memory::cmp_ranges`] / [`Memory::fill`] instead.
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn slice(&self, addr: u64, len: u64) -> Result<&[u8], Trap> {
        self.check(addr, len)?;
        if addr + len > self.region_end(addr) {
            return Err(Trap::Segfault(addr));
        }
        let (b, off) = self.backing(addr);
        if off + len as usize > b.len() {
            return Err(Trap::Segfault(addr));
        }
        Ok(&b[off..off + len as usize])
    }

    /// Mutably borrow a byte range (must lie within one region).
    ///
    /// # Errors
    /// Traps on out-of-range access.
    pub fn slice_mut(&mut self, addr: u64, len: u64) -> Result<&mut [u8], Trap> {
        self.check(addr, len)?;
        if addr + len > self.region_end(addr) {
            return Err(Trap::Segfault(addr));
        }
        let (b, off) = self.backing_mut(addr, len as usize);
        Ok(&mut b[off..off + len as usize])
    }

    /// memmove-style copy (handles overlap).
    ///
    /// # Errors
    /// Traps when either range is invalid.
    pub fn copy(&mut self, dst: u64, src: u64, len: u64) -> Result<(), Trap> {
        self.check(src, len)?;
        self.check(dst, len)?;
        // Materialize the source (handles overlap and region crossings),
        // then write it out chunk-wise.
        let mut buf = Vec::with_capacity(len as usize);
        self.read_into(&mut buf, src, len)?;
        let mut a = dst;
        let mut done = 0usize;
        while done < buf.len() {
            let n = ((buf.len() - done) as u64).min(self.region_end(a) - a) as usize;
            let (b, off) = self.backing_mut(a, n);
            b[off..off + n].copy_from_slice(&buf[done..done + n]);
            a += n as u64;
            done += n;
        }
        Ok(())
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Memory({} bytes, heap at {:#x}, {} resident)",
            self.size,
            self.heap_next,
            self.resident_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(DEFAULT_MEM_SIZE, &[1, 2, 3, 4], &[9, 9], 4)
    }

    #[test]
    fn layout_places_segments() {
        let m = mem();
        assert_eq!(m.load(GLOBAL_BASE, 4).unwrap(), 0x04030201);
        assert_eq!(m.load(INPUT_BASE, 2).unwrap(), 0x0909);
    }

    #[test]
    fn null_page_faults() {
        let m = mem();
        assert_eq!(m.load(0, 8), Err(Trap::Segfault(0)));
        assert_eq!(m.load(0xFFF, 1), Err(Trap::Segfault(0xFFF)));
        assert!(m.load(0x1000 + GLOBAL_BASE, 1).is_ok());
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = mem();
        let top = m.size();
        assert!(matches!(m.load(top, 1), Err(Trap::Segfault(_))));
        assert!(matches!(m.store(top - 4, 8, 1), Err(Trap::Segfault(_))));
        assert!(m.store(top - 8, 8, 1).is_ok());
    }

    #[test]
    fn load_store_roundtrip_le() {
        let mut m = mem();
        m.store(HEAP_BASE, 8, 0x1122_3344_5566_7788).unwrap();
        assert_eq!(m.load(HEAP_BASE, 8).unwrap(), 0x1122_3344_5566_7788);
        assert_eq!(m.load(HEAP_BASE, 1).unwrap(), 0x88);
        assert_eq!(m.load(HEAP_BASE + 7, 1).unwrap(), 0x11);
        m.store(HEAP_BASE + 16, 2, 0xABCD).unwrap();
        assert_eq!(m.load(HEAP_BASE + 16, 4).unwrap(), 0xABCD);
    }

    #[test]
    fn malloc_bumps_and_exhausts() {
        let mut m = Memory::new(HEAP_BASE + 4 * STACK_SIZE + 1024 * 1024, &[], &[], 1);
        let a = m.malloc(100).unwrap();
        let b = m.malloc(100).unwrap();
        assert_eq!(a % 32, 0);
        assert!(b >= a + 100);
        assert!(m.malloc(1 << 40).is_err());
    }

    #[test]
    fn stacks_are_disjoint_per_thread() {
        let m = mem();
        assert_eq!(m.stack_top(0), m.size());
        assert_eq!(m.stack_top(1), m.size() - STACK_SIZE);
        assert!(m.stack_limit(0) >= m.stack_top(1));
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        let mut m = mem();
        for i in 0..16 {
            m.store(HEAP_BASE + i, 1, i).unwrap();
        }
        m.copy(HEAP_BASE + 4, HEAP_BASE, 12).unwrap();
        assert_eq!(m.load(HEAP_BASE + 4, 1).unwrap(), 0);
        assert_eq!(m.load(HEAP_BASE + 15, 1).unwrap(), 11);
    }

    #[test]
    fn untouched_memory_reads_zero_everywhere() {
        let m = mem();
        // Gaps between segments, unwritten heap, unwritten stacks.
        assert_eq!(m.load(LOW_BASE, 8).unwrap(), 0);
        assert_eq!(m.load(GLOBAL_BASE + 1000, 8).unwrap(), 0);
        assert_eq!(m.load(INPUT_BASE + 100, 8).unwrap(), 0);
        assert_eq!(m.load(HEAP_BASE + (1 << 20), 8).unwrap(), 0);
        assert_eq!(m.load(m.size() - 64, 8).unwrap(), 0);
    }

    #[test]
    fn wild_writes_persist_like_flat_memory() {
        let mut m = mem();
        // A store into the inter-segment gap must read back.
        let wild = INPUT_BASE + 0x20_0000;
        m.store(wild, 8, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.load(wild, 8).unwrap(), 0xDEAD_BEEF);
        // A store crossing the input→heap boundary round-trips.
        let edge = HEAP_BASE - 4;
        m.store(edge, 8, 0x1234_5678_9ABC_DEF0).unwrap();
        assert_eq!(m.load(edge, 8).unwrap(), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn clone_cost_tracks_usage_not_size() {
        let mut m = mem();
        let before = m.resident_bytes();
        assert!(before < 1 << 20, "fresh memory must be near-empty, got {before}");
        m.store(HEAP_BASE + 4096, 8, 1).unwrap();
        m.store(m.size() - 128, 8, 1).unwrap(); // one stack chunk
        let after = m.resident_bytes();
        assert!(after >= STACK_SIZE, "stack chunk materialized");
        assert!(after < 4 * STACK_SIZE, "only touched segments materialize");
    }

    #[test]
    fn read_into_fill_cmp_cross_regions() {
        let mut m = mem();
        m.fill(HEAP_BASE, 0xAB, 64).unwrap();
        let mut out = Vec::new();
        m.read_into(&mut out, HEAP_BASE, 64).unwrap();
        assert_eq!(out, vec![0xAB; 64]);
        // Compare a filled range against an untouched (zero) range.
        assert_eq!(m.cmp_ranges(HEAP_BASE, HEAP_BASE + (1 << 20), 64).unwrap(), std::cmp::Ordering::Greater);
        assert_eq!(
            m.cmp_ranges(HEAP_BASE + (1 << 21), HEAP_BASE + (1 << 20), 64).unwrap(),
            std::cmp::Ordering::Equal
        );
    }
}
