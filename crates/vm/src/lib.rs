//! # elzar-vm
//!
//! Execution substrate for the ELZAR reproduction: lowers `elzar-ir`
//! modules to flat code ([`lower`]), executes them on a multi-threaded
//! interpreter with a flat ECC-protected memory ([`memory`]) and an
//! integrated Haswell-like timing model ([`machine`]), and exposes the
//! hooks the fault-injection framework needs (eligible-instruction
//! counting, destination-register bit flips, Table-I trap taxonomy).
//!
//! ```
//! use elzar_ir::builder::{c64, FuncBuilder};
//! use elzar_ir::{Module, Ty};
//! use elzar_vm::{run_program, MachineConfig, Program, RunOutcome};
//!
//! let mut m = Module::new("demo");
//! let mut b = FuncBuilder::new("main", vec![], Ty::I64);
//! let x = b.add(c64(40), c64(2));
//! b.ret(x);
//! m.add_func(b.finish());
//!
//! let prog = Program::lower(&m);
//! let result = run_program(&prog, "main", &[], MachineConfig::default());
//! assert_eq!(result.outcome, RunOutcome::Exited(42));
//! ```

#![warn(missing_docs)]

pub mod lower;
pub mod machine;
pub mod memory;
pub mod trace;

pub use elzar_engine::{avx2_available, cpu_features, Backend, Engine, EngineKind};
pub use lower::{DGroup, LBlock, LFunc, LInst, LKind, LOp, LPhi, LTerm, Program, VMeta, NO_DST};
pub use machine::{
    run_program, FaultPlan, Machine, MachineConfig, RecoveryPolicy, ReferenceEngine, RtVal, RunOutcome,
    RunResult, TraceScalarEngine, TraceSimdEngine,
};
pub use memory::{Memory, Trap, DEFAULT_MEM_SIZE, GLOBAL_BASE, HEAP_BASE, INPUT_BASE, STACK_SIZE};
pub use trace::Trace;
