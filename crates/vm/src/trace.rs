//! Superblock traces: straight-line op sequences formed at lower time.
//!
//! The trace engine executes whole *superblocks* instead of stepping one
//! lowered instruction at a time. A trace starts at a block head and
//! follows unconditional branches through fresh blocks, compiling every
//! instruction into a pre-decoded `TOp` with its timing cost resolved
//! up front (`Pc`). Formation cuts at anything that needs
//! whole-machine access or can reschedule the thread:
//!
//! * calls (`CallF`) and every builtin (`CallB`) — including
//!   `Heartbeat`, so heartbeat timestamps take the reference path;
//! * atomics and fences (they serialize against other threads);
//! * returns and `Unreachable`;
//! * a block already in the trace (loop back-edges), so traces are
//!   acyclic;
//! * a length cap, bounding the budget overshoot per trace entry.
//!
//! Conditional terminators (`CondBr`, `PtestBr`) are the trace's side
//! exits: they execute *in*-trace — same branch-site ids and mispredict
//! cascade as the reference interpreter — then end it, transferring
//! control via the regular edge/phi mechanism. An interrupted trace is
//! always at an instruction boundary (`Frame::ip` advances per op), so
//! per-instruction execution can resume anywhere inside one.
//!
//! The fault-injection window is handled by the *executor*, not here:
//! `Trace::writes` upper-bounds how many eligible (fault-injectable)
//! destination writes one entry can retire, and the machine refuses to
//! enter a trace whose window could contain the planned injection index,
//! falling back to per-instruction stepping where the flip logic lives.

use crate::lower::{LFunc, LInst, LKind, LOp, LTerm, VMeta, NO_DST};
use elzar_avx::LaneWidth;
use elzar_cpu::Cost;
use elzar_engine::kernels::{BinKernel, UnKernel};
use elzar_ir::{BinOp, CastOp, CmpPred};

/// Precomputed cost of one op: what the reference interpreter would
/// re-derive from its `InstClass` on every retire.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pc {
    /// Issue cost (latency, ports, occupancy, expansion).
    pub(crate) cost: Cost,
    /// Counts toward the AVX-instruction counter.
    pub(crate) avx: bool,
}

impl Pc {
    fn of(class: elzar_cpu::InstClass) -> Pc {
        Pc { cost: class.cost(), avx: class.is_avx() }
    }
}

/// One pre-decoded trace op. Operand/result semantics are exactly the
/// reference interpreter's handler for the same `LKind`; the vector
/// forms additionally carry a kernel-table index when the operand shape
/// is a full 256-bit register.
#[derive(Clone, Debug)]
pub(crate) enum TOp {
    /// Scalar binary op.
    SBin { op: BinOp, m: VMeta, pc: Pc, dst: u32, a: LOp, b: LOp },
    /// Scalar compare (unfused).
    SCmp { m: VMeta, pred: CmpPred, pc: Pc, dst: u32, a: LOp, b: LOp },
    /// Scalar compare macro-fused with the following branch: no retire.
    SCmpFused { m: VMeta, pred: CmpPred, dst: u32, a: LOp, b: LOp },
    /// Scalar-to-scalar cast.
    SCast { op: CastOp, from: VMeta, to: VMeta, pc: Pc, dst: u32, a: LOp },
    /// Address arithmetic.
    Gep { pc: Pc, dst: u32, base: LOp, index: LOp, scale: u32 },
    /// Select / blend (identical handling for scalar and vector shapes).
    Sel { m: VMeta, cond_scalar: bool, pc: Pc, dst: u32, cond: LOp, a: LOp, b: LOp },
    /// Memory load.
    Load { m: VMeta, pc: Pc, dst: u32, addr: LOp },
    /// Memory store.
    Store { m: VMeta, pc: Pc, val: LOp, addr: LOp },
    /// Hardened load: majority-vote the replicated address, load once,
    /// re-replicate (§VII-B). The hot memory op of ELZAR-mode code.
    Gather { m: VMeta, pc: Pc, dst: u32, addrs: LOp },
    /// Hardened store: majority-vote address and value, store once.
    Scatter { m: VMeta, pc: Pc, val: LOp, addrs: LOp },
    /// Stack allocation.
    Alloca { pc: Pc, dst: u32, elem_bytes: u32, count: LOp },
    /// Vector binary op with a full-register kernel.
    VBinK { k: BinKernel, m: VMeta, pc: Pc, dst: u32, a: LOp, b: LOp },
    /// Vector binary op, generic per-lane path (esoteric shapes, div).
    VBinL { op: BinOp, m: VMeta, pc: Pc, dst: u32, a: LOp, b: LOp },
    /// Vector compare with a full-register kernel.
    VCmpK { k: BinKernel, m: VMeta, pc: Pc, dst: u32, a: LOp, b: LOp },
    /// Vector compare, generic per-lane path.
    VCmpL { pred: CmpPred, m: VMeta, pc: Pc, dst: u32, a: LOp, b: LOp },
    /// Vector cast.
    VCast { op: CastOp, from: VMeta, to: VMeta, pc: Pc, dst: u32, a: LOp },
    /// Lane extract.
    Extract { m: VMeta, pc: Pc, dst: u32, vec: LOp, idx: LOp },
    /// Lane insert.
    Insert { m: VMeta, pc: Pc, dst: u32, vec: LOp, val: LOp, idx: LOp },
    /// Full-register rotate-by-one shuffle (the Figure-8 check pattern).
    ShufRot { k: UnKernel, m: VMeta, pc: Pc, dst: u32, a: LOp },
    /// Generic lane permutation.
    Shuf { m: VMeta, pc: Pc, dst: u32, a: LOp, mask: Box<[u8]> },
    /// Broadcast; `full` selects the whole-register fast path.
    Splat { m: VMeta, full: bool, pc: Pc, dst: u32, val: LOp },
    /// Mask fold to flags; `full` selects the whole-register fast path.
    Ptest { m: VMeta, full: bool, pc: Pc, dst: u32, mask: LOp },
    /// Followed unconditional branch (retires a jump, applies the edge).
    Jump { target: u32 },
    /// Side exit: two-way branch, ends the trace.
    CondBr { site: u64, cond: LOp, t: u32, f: u32 },
    /// Three-way ptest branch. Taking the `cont` target continues the
    /// trace (the following ops belong to it); any other exit ends it.
    PtestBr { site: u64, flags: LOp, m: Option<VMeta>, bbs: [u32; 3], cont: u32 },
    /// Fused §IV-B Figure-8 check ending a block — rotate, xor against
    /// the source, ptest, three-way branch — executed as one dispatch
    /// with the source register read once. Replays the unfused quad's
    /// exact retire sequence, slot writes and step count (weight 4).
    Check8Br {
        /// The rotate-by-one shuffle kernel.
        k: UnKernel,
        m: VMeta,
        pc_shuf: Pc,
        pc_xor: Pc,
        pc_ptest: Pc,
        /// Destinations of the three fused instructions, in order.
        d_shuf: u32,
        d_xor: u32,
        d_code: u32,
        /// Source slot (the checked replicated register).
        a: u32,
        site: u64,
        bbs: [u32; 3],
        cont: u32,
    },
    /// Fused compare-and-branch check: vector compare, ptest, three-way
    /// branch (weight 3). Same accounting contract as [`TOp::Check8Br`].
    CmpCheckBr {
        /// The full-register compare kernel.
        k: BinKernel,
        m: VMeta,
        pc_cmp: Pc,
        pc_ptest: Pc,
        d_mask: u32,
        d_code: u32,
        a: LOp,
        b: LOp,
        site: u64,
        bbs: [u32; 3],
        cont: u32,
    },
    /// Fused hardened load (§VII-B lowering): extract one replica of the
    /// address, scalar load, re-replicate (weight 3).
    ExtractLoadSplat {
        /// Extract shape (the replicated pointer register).
        em: VMeta,
        /// Scalar load shape.
        lm: VMeta,
        /// Splat shape plus its whole-register fast-path flag.
        sm: VMeta,
        full: bool,
        pc_ex: Pc,
        pc_ld: Pc,
        pc_sp: Pc,
        d_lane: u32,
        d_val: u32,
        d_vec: u32,
        vec: LOp,
        idx: LOp,
    },
    /// Fused hardened store: extract one replica of the address, scalar
    /// store (weight 2).
    ExtractStore {
        /// Extract shape.
        em: VMeta,
        /// Scalar store shape.
        sm: VMeta,
        pc_ex: Pc,
        pc_st: Pc,
        d_lane: u32,
        vec: LOp,
        idx: LOp,
        val: LOp,
    },
    /// Two dependent full-register binary ops fused into one dispatch:
    /// the second op reads the first's destination, which stays in a
    /// register (weight 2). `swapped` records whether the chained value
    /// is the second op's right operand (kernels are not commutative).
    VBin2K {
        k1: BinKernel,
        k2: BinKernel,
        m1: VMeta,
        m2: VMeta,
        pc1: Pc,
        pc2: Pc,
        d1: u32,
        d2: u32,
        a: LOp,
        b: LOp,
        /// The second op's non-chained operand.
        o: LOp,
        swapped: bool,
    },
    /// Bit-reinterpreting vector cast (`Bitcast`/`PtrToInt`/`IntToPtr`
    /// with a vector destination): the value passes through unchanged,
    /// so the generic cast dispatch is skipped.
    VCastId { m: VMeta, pc: Pc, dst: u32, a: LOp },
    /// Two chained bit-reinterpreting casts fused into one dispatch
    /// (weight 2): the pointer-arithmetic `IntToPtr; PtrToInt` sandwich
    /// hardened address computations end with. The value is read once
    /// and committed to both destination slots.
    VCast2Id { m1: VMeta, pc1: Pc, pc2: Pc, d1: u32, d2: u32, a: LOp },
    /// A bit-reinterpreting cast feeding one operand of a full-register
    /// binary op, fused into one dispatch (weight 2). `swapped` records
    /// whether the cast value is the binary op's right operand.
    CastBinK {
        k: BinKernel,
        /// Cast shape.
        cm: VMeta,
        /// Binary-op shape.
        bm: VMeta,
        pc_c: Pc,
        pc_b: Pc,
        d1: u32,
        d2: u32,
        a: LOp,
        /// The binary op's non-chained operand.
        o: LOp,
        swapped: bool,
    },
}

impl TOp {
    /// Does this op write a destination slot (and therefore count toward
    /// the eligible-instruction total when the function is hardened)?
    fn writes_dst(&self) -> bool {
        match self {
            TOp::SBin { dst, .. }
            | TOp::SCmp { dst, .. }
            | TOp::SCmpFused { dst, .. }
            | TOp::SCast { dst, .. }
            | TOp::Gep { dst, .. }
            | TOp::Sel { dst, .. }
            | TOp::Load { dst, .. }
            | TOp::Gather { dst, .. }
            | TOp::Alloca { dst, .. }
            | TOp::VBinK { dst, .. }
            | TOp::VBinL { dst, .. }
            | TOp::VCmpK { dst, .. }
            | TOp::VCmpL { dst, .. }
            | TOp::VCast { dst, .. }
            | TOp::Extract { dst, .. }
            | TOp::Insert { dst, .. }
            | TOp::ShufRot { dst, .. }
            | TOp::Shuf { dst, .. }
            | TOp::Splat { dst, .. }
            | TOp::Ptest { dst, .. } => *dst != NO_DST,
            TOp::Store { .. }
            | TOp::Scatter { .. }
            | TOp::Jump { .. }
            | TOp::CondBr { .. }
            | TOp::PtestBr { .. } => false,
            TOp::VCastId { dst, .. } => *dst != NO_DST,
            // Fused ops count via `TOp::writes`, never per-op.
            TOp::Check8Br { .. }
            | TOp::CmpCheckBr { .. }
            | TOp::ExtractLoadSplat { .. }
            | TOp::ExtractStore { .. }
            | TOp::VBin2K { .. }
            | TOp::VCast2Id { .. }
            | TOp::CastBinK { .. } => false,
        }
    }

    /// Reference-interpreter steps this op retires: 1, except for the
    /// fused patterns. The executor charges this many budget units and
    /// refuses to start an op it cannot finish within the quantum (the
    /// per-instruction path picks up the tail instead).
    pub(crate) fn weight(&self) -> usize {
        match self {
            TOp::Check8Br { .. } => 4,
            TOp::CmpCheckBr { .. } | TOp::ExtractLoadSplat { .. } => 3,
            TOp::ExtractStore { .. } | TOp::VBin2K { .. } | TOp::VCast2Id { .. } | TOp::CastBinK { .. } => 2,
            _ => 1,
        }
    }

    /// Eligible destination writes this op commits (the fault-window
    /// contribution).
    fn writes(&self) -> u64 {
        let fused_dsts: &[u32] = match self {
            TOp::Check8Br { d_shuf, d_xor, d_code, .. } => &[*d_shuf, *d_xor, *d_code],
            TOp::CmpCheckBr { d_mask, d_code, .. } => &[*d_mask, *d_code],
            TOp::ExtractLoadSplat { d_lane, d_val, d_vec, .. } => &[*d_lane, *d_val, *d_vec],
            TOp::ExtractStore { d_lane, .. } => &[*d_lane],
            TOp::VBin2K { d1, d2, .. } | TOp::VCast2Id { d1, d2, .. } | TOp::CastBinK { d1, d2, .. } => {
                &[*d1, *d2]
            }
            _ => return u64::from(self.writes_dst()),
        };
        fused_dsts.iter().filter(|d| **d != NO_DST).count() as u64
    }
}

/// A compiled superblock anchored at one `(function, block)` head.
/// Empty when the block's first instruction is untraceable.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The op sequence; at most one terminator, always last.
    pub(crate) ops: Vec<TOp>,
    /// Upper bound on eligible destination writes per entry — the
    /// fault-injection window the executor checks before entering.
    pub(crate) writes: u64,
    /// Whether writes in this trace are fault-eligible (§IV-B).
    pub(crate) hardened: bool,
}

/// "No continuation" sentinel for a trace-ending branch target.
pub(crate) const NO_CONT: u32 = u32::MAX;

/// Length cap per trace: bounds both compile-time explosion on long
/// `Br` chains and how far a single entry can overshoot into the
/// scheduler quantum's tail.
const MAX_OPS: usize = 160;

/// Build one trace per block of `lf` (function index `func` in the
/// program, used for stable branch-site ids).
pub(crate) fn build_traces(func: u32, lf: &LFunc) -> Vec<Trace> {
    (0..lf.blocks.len() as u32).map(|b| build_trace(func, lf, b)).collect()
}

fn build_trace(func: u32, lf: &LFunc, start: u32) -> Trace {
    let mut ops: Vec<TOp> = Vec::new();
    let mut visited = vec![start];
    let mut block = start;
    'form: loop {
        let lb = &lf.blocks[block as usize];
        for inst in &lb.insts {
            if ops.len() >= MAX_OPS {
                break 'form;
            }
            match compile(inst) {
                Some(op) => ops.push(op),
                None => break 'form,
            }
        }
        if ops.len() >= MAX_OPS {
            break;
        }
        let site = (u64::from(func) << 16) | u64::from(block);
        match &lb.term {
            LTerm::Br(t) => {
                // The jump executes in-trace either way; a back-edge
                // (or re-joined diamond) ends the trace after it, and
                // the target's own trace re-enters at `ip == 0`.
                ops.push(TOp::Jump { target: *t });
                if visited.contains(t) {
                    break;
                }
                visited.push(*t);
                block = *t;
            }
            LTerm::CondBr { cond, t, f } => {
                ops.push(TOp::CondBr { site, cond: *cond, t: *t, f: *f });
                break;
            }
            LTerm::PtestBr { flags, mask_meta, bbs } => {
                // Speculatively continue into the statically likely
                // target so superblocks span whole check regions. A
                // Figure-8 check merges its fault paths
                // (`bbs[1] == bbs[2]`) and in fault-free execution
                // always takes `bbs[0]`; a genuine three-way compare
                // check most often sees all replicas agree on *true*
                // (`bbs[1]`, e.g. a loop's continue edge). The executor
                // exits the trace whenever any other path is taken.
                let want = if bbs[1] == bbs[2] { bbs[0] } else { bbs[1] };
                let cont = if visited.contains(&want) { NO_CONT } else { want };
                ops.push(TOp::PtestBr { site, flags: *flags, m: *mask_meta, bbs: *bbs, cont });
                if cont == NO_CONT {
                    break;
                }
                visited.push(cont);
                block = cont;
            }
            LTerm::Ret(_) | LTerm::Unreachable => break,
        }
    }
    let ops = fuse(ops);
    let writes = ops.iter().map(TOp::writes).sum();
    Trace { ops, writes, hardened: lf.hardened }
}

/// Pattern-fuse the ELZAR check and hardened-memory idioms so the
/// executor pays one dispatch (and one source-register read) for what
/// the unfused trace handles as 2–4 separate ops. A fused op replays
/// the identical retire / slot-write / step accounting, so everything
/// observable stays bit-identical; any sequence not matching the exact
/// slot-chained shape is left unfused.
fn fuse(ops: Vec<TOp>) -> Vec<TOp> {
    let mut out = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        match fuse_at(&ops[i..]) {
            Some((op, n)) => {
                out.push(op);
                i += n;
            }
            None => {
                out.push(ops[i].clone());
                i += 1;
            }
        }
    }
    out
}

/// Try to fuse a pattern starting at `w[0]`; returns the fused op and
/// how many ops it consumed. Longest patterns are tried first.
fn fuse_at(w: &[TOp]) -> Option<(TOp, usize)> {
    // Figure-8 check quad: `s1 = rot(x); s2 = x ^ s1; s3 = ptest(s2);
    // ptest_br(s3)`. The xor's operands may appear in either order —
    // xor is commutative and `issue` folds operand readiness with max.
    if let [TOp::ShufRot { k, m, pc: pc1, dst: d1, a: LOp::Slot(x) }, TOp::VBinK { k: BinKernel::Xor, pc: pc2, dst: d2, a, b, .. }, TOp::Ptest { full: true, pc: pc3, dst: d3, mask: LOp::Slot(mz), .. }, TOp::PtestBr { site, flags: LOp::Slot(fz), m: None, bbs, cont }, ..] =
        w
    {
        let chained = matches!((a, b), (LOp::Slot(p), LOp::Slot(q))
            if (p == x && q == d1) || (p == d1 && q == x));
        if chained && *mz == *d2 && *fz == *d3 && *d1 != *x && [*d1, *d2, *d3].iter().all(|d| *d != NO_DST) {
            return Some((
                TOp::Check8Br {
                    k: *k,
                    m: *m,
                    pc_shuf: *pc1,
                    pc_xor: *pc2,
                    pc_ptest: *pc3,
                    d_shuf: *d1,
                    d_xor: *d2,
                    d_code: *d3,
                    a: *x,
                    site: *site,
                    bbs: *bbs,
                    cont: *cont,
                },
                4,
            ));
        }
    }
    // Compare-check triple: `s1 = cmp(a, b); s2 = ptest(s1);
    // ptest_br(s2)` — the hardened conditional-branch lowering.
    if let [TOp::VCmpK { k, m, pc: pc1, dst: d1, a, b }, TOp::Ptest { full: true, pc: pc2, dst: d2, mask: LOp::Slot(mz), .. }, TOp::PtestBr { site, flags: LOp::Slot(fz), m: None, bbs, cont }, ..] =
        w
    {
        if *mz == *d1 && *fz == *d2 && *d1 != NO_DST && *d2 != NO_DST {
            return Some((
                TOp::CmpCheckBr {
                    k: *k,
                    m: *m,
                    pc_cmp: *pc1,
                    pc_ptest: *pc2,
                    d_mask: *d1,
                    d_code: *d2,
                    a: *a,
                    b: *b,
                    site: *site,
                    bbs: *bbs,
                    cont: *cont,
                },
                3,
            ));
        }
    }
    // Hardened load: `s1 = extract(vec, idx); s2 = load(s1);
    // s3 = splat(s2)`.
    if let [TOp::Extract { m: em, pc: pc1, dst: d1, vec, idx }, TOp::Load { m: lm, pc: pc2, dst: d2, addr: LOp::Slot(az) }, TOp::Splat { m: sm, full, pc: pc3, dst: d3, val: LOp::Slot(vz) }, ..] =
        w
    {
        if lm.scalar && *az == *d1 && *vz == *d2 && [*d1, *d2, *d3].iter().all(|d| *d != NO_DST) {
            return Some((
                TOp::ExtractLoadSplat {
                    em: *em,
                    lm: *lm,
                    sm: *sm,
                    full: *full,
                    pc_ex: *pc1,
                    pc_ld: *pc2,
                    pc_sp: *pc3,
                    d_lane: *d1,
                    d_val: *d2,
                    d_vec: *d3,
                    vec: *vec,
                    idx: *idx,
                },
                3,
            ));
        }
    }
    // Dependent binary pair: `s1 = op1(a, b); s2 = op2(s1, o)` (or the
    // chained operand on the right). The intermediate stays in a
    // register; its slot is still committed.
    if let [TOp::VBinK { k: k1, m: m1, pc: pc1, dst: d1, a, b }, TOp::VBinK { k: k2, m: m2, pc: pc2, dst: d2, a: a2, b: b2 }, ..] =
        w
    {
        let chained = |op: &LOp| matches!(op, LOp::Slot(s) if s == d1);
        let pick = match (chained(a2), chained(b2)) {
            (true, false) => Some((*b2, false)),
            (false, true) => Some((*a2, true)),
            _ => None,
        };
        if let Some((o, swapped)) = pick {
            if *d1 != NO_DST && *d2 != NO_DST {
                return Some((
                    TOp::VBin2K {
                        k1: *k1,
                        k2: *k2,
                        m1: *m1,
                        m2: *m2,
                        pc1: *pc1,
                        pc2: *pc2,
                        d1: *d1,
                        d2: *d2,
                        a: *a,
                        b: *b,
                        o,
                        swapped,
                    },
                    2,
                ));
            }
        }
    }
    // Hardened store: `s1 = extract(vec, idx); store(val, s1)`.
    if let [TOp::Extract { m: em, pc: pc1, dst: d1, vec, idx }, TOp::Store { m: sm, pc: pc2, val, addr: LOp::Slot(az) }, ..] =
        w
    {
        if sm.scalar && *az == *d1 && *d1 != NO_DST {
            return Some((
                TOp::ExtractStore {
                    em: *em,
                    sm: *sm,
                    pc_ex: *pc1,
                    pc_st: *pc2,
                    d_lane: *d1,
                    vec: *vec,
                    idx: *idx,
                    val: *val,
                },
                2,
            ));
        }
    }
    // Bit-reinterpreting cast feeding a binary op: `s1 = cast(a);
    // s2 = op(s1, o)` (or chained on the right) — the head of the
    // pointer-arithmetic idiom hardened address computations lower to.
    if let [TOp::VCast {
        op: CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr,
        from,
        to,
        pc: pc_c,
        dst: d1,
        a,
    }, TOp::VBinK { k, m, pc: pc_b, dst: d2, a: a2, b: b2 }, ..] = w
    {
        let chained = |op: &LOp| matches!(op, LOp::Slot(s) if s == d1);
        let pick = match (chained(a2), chained(b2)) {
            (true, false) => Some((*b2, false)),
            (false, true) => Some((*a2, true)),
            _ => None,
        };
        if let Some((o, swapped)) = pick {
            if !to.scalar && *d1 != NO_DST && *d2 != NO_DST {
                return Some((
                    TOp::CastBinK {
                        k: *k,
                        cm: *from,
                        bm: *m,
                        pc_c: *pc_c,
                        pc_b: *pc_b,
                        d1: *d1,
                        d2: *d2,
                        a: *a,
                        o,
                        swapped,
                    },
                    2,
                ));
            }
        }
    }
    // Chained pair of bit-reinterpreting casts: `s1 = cast(a);
    // s2 = cast(s1)` — the `IntToPtr; PtrToInt` sandwich tail.
    if let [TOp::VCast {
        op: CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr,
        from: f1,
        to: t1,
        pc: pc1,
        dst: d1,
        a,
    }, TOp::VCast {
        op: CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr,
        // The second cast's source shape is irrelevant: a register
        // value passes through `v()` untouched.
        from: _,
        to: t2,
        pc: pc2,
        dst: d2,
        a: LOp::Slot(az),
    }, ..] = w
    {
        if !t1.scalar && !t2.scalar && *az == *d1 && *d1 != NO_DST && *d2 != NO_DST {
            return Some((TOp::VCast2Id { m1: *f1, pc1: *pc1, pc2: *pc2, d1: *d1, d2: *d2, a: *a }, 2));
        }
    }
    // Bit-reinterpreting vector cast: the value is passed through
    // unchanged (`vec_cast` returns `V(va.v(from))` for these ops), so
    // the generic cast dispatch is skipped.
    if let [TOp::VCast { op: CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr, from, to, pc, dst, a }, ..] =
        w
    {
        if !to.scalar {
            return Some((TOp::VCastId { m: *from, pc: *pc, dst: *dst, a: *a }, 1));
        }
    }
    None
}

/// Full-register shape: every storage lane of the YMM register is a
/// live element at its full logical width. Hardened code is almost
/// entirely full-register (§III widens scalars to whole YMM registers),
/// which is what lets kernels run without per-lane masking.
fn full_register(m: &VMeta) -> bool {
    !m.scalar && m.lanes as usize == m.width.capacity() && u32::from(m.bits) == m.width.bits()
}

/// Kernel for a full-register binary op, if the table has one.
/// Integer division stays per-lane (it traps); 8-bit multiplies and
/// sub-32-bit shifts/min/max have no kernel either.
fn bin_kernel(op: BinOp, m: &VMeta) -> Option<BinKernel> {
    use BinKernel as K;
    use LaneWidth as W;
    if !full_register(m) {
        return None;
    }
    if m.float {
        let k = match (op, m.width) {
            (BinOp::FAdd, W::B32) => K::FAdd32,
            (BinOp::FSub, W::B32) => K::FSub32,
            (BinOp::FMul, W::B32) => K::FMul32,
            (BinOp::FDiv, W::B32) => K::FDiv32,
            (BinOp::FMin, W::B32) => K::FMin32,
            (BinOp::FMax, W::B32) => K::FMax32,
            (BinOp::FAdd, W::B64) => K::FAdd64,
            (BinOp::FSub, W::B64) => K::FSub64,
            (BinOp::FMul, W::B64) => K::FMul64,
            (BinOp::FDiv, W::B64) => K::FDiv64,
            (BinOp::FMin, W::B64) => K::FMin64,
            (BinOp::FMax, W::B64) => K::FMax64,
            _ => return None,
        };
        return Some(k);
    }
    let k = match (op, m.width) {
        (BinOp::And, _) => K::And,
        (BinOp::Or, _) => K::Or,
        (BinOp::Xor, _) => K::Xor,
        (BinOp::Add, W::B8) => K::Add8,
        (BinOp::Add, W::B16) => K::Add16,
        (BinOp::Add, W::B32) => K::Add32,
        (BinOp::Add, W::B64) => K::Add64,
        (BinOp::Sub, W::B8) => K::Sub8,
        (BinOp::Sub, W::B16) => K::Sub16,
        (BinOp::Sub, W::B32) => K::Sub32,
        (BinOp::Sub, W::B64) => K::Sub64,
        (BinOp::Mul, W::B16) => K::Mul16,
        (BinOp::Mul, W::B32) => K::Mul32,
        (BinOp::Mul, W::B64) => K::Mul64,
        (BinOp::Shl, W::B32) => K::Shl32,
        (BinOp::Shl, W::B64) => K::Shl64,
        (BinOp::LShr, W::B32) => K::Lshr32,
        (BinOp::LShr, W::B64) => K::Lshr64,
        (BinOp::AShr, W::B32) => K::AShr32,
        (BinOp::AShr, W::B64) => K::AShr64,
        (BinOp::UMin, W::B32) => K::UMin32,
        (BinOp::UMax, W::B32) => K::UMax32,
        (BinOp::SMin, W::B32) => K::SMin32,
        (BinOp::SMax, W::B32) => K::SMax32,
        (BinOp::UMin, W::B64) => K::UMin64,
        (BinOp::UMax, W::B64) => K::UMax64,
        (BinOp::SMin, W::B64) => K::SMin64,
        (BinOp::SMax, W::B64) => K::SMax64,
        _ => return None,
    };
    Some(k)
}

/// Kernel for a full-register compare, if the table has one.
fn cmp_kernel(pred: CmpPred, m: &VMeta) -> Option<BinKernel> {
    use BinKernel as K;
    use LaneWidth as W;
    if !full_register(m) {
        return None;
    }
    if m.float {
        let k = match (pred, m.width) {
            (CmpPred::FOeq, W::B32) => K::FOeq32,
            (CmpPred::FOne, W::B32) => K::FOne32,
            (CmpPred::FOlt, W::B32) => K::FOlt32,
            (CmpPred::FOle, W::B32) => K::FOle32,
            (CmpPred::FOgt, W::B32) => K::FOgt32,
            (CmpPred::FOge, W::B32) => K::FOge32,
            (CmpPred::FOeq, W::B64) => K::FOeq64,
            (CmpPred::FOne, W::B64) => K::FOne64,
            (CmpPred::FOlt, W::B64) => K::FOlt64,
            (CmpPred::FOle, W::B64) => K::FOle64,
            (CmpPred::FOgt, W::B64) => K::FOgt64,
            (CmpPred::FOge, W::B64) => K::FOge64,
            _ => return None,
        };
        return Some(k);
    }
    let k = match (pred, m.width) {
        (CmpPred::Eq, W::B8) => K::Eq8,
        (CmpPred::Ne, W::B8) => K::Ne8,
        (CmpPred::Eq, W::B16) => K::Eq16,
        (CmpPred::Ne, W::B16) => K::Ne16,
        (CmpPred::Eq, W::B32) => K::Eq32,
        (CmpPred::Ne, W::B32) => K::Ne32,
        (CmpPred::Ult, W::B32) => K::Ult32,
        (CmpPred::Ule, W::B32) => K::Ule32,
        (CmpPred::Ugt, W::B32) => K::Ugt32,
        (CmpPred::Uge, W::B32) => K::Uge32,
        (CmpPred::Slt, W::B32) => K::Slt32,
        (CmpPred::Sle, W::B32) => K::Sle32,
        (CmpPred::Sgt, W::B32) => K::Sgt32,
        (CmpPred::Sge, W::B32) => K::Sge32,
        (CmpPred::Eq, W::B64) => K::Eq64,
        (CmpPred::Ne, W::B64) => K::Ne64,
        (CmpPred::Ult, W::B64) => K::Ult64,
        (CmpPred::Ule, W::B64) => K::Ule64,
        (CmpPred::Ugt, W::B64) => K::Ugt64,
        (CmpPred::Uge, W::B64) => K::Uge64,
        (CmpPred::Slt, W::B64) => K::Slt64,
        (CmpPred::Sle, W::B64) => K::Sle64,
        (CmpPred::Sgt, W::B64) => K::Sgt64,
        (CmpPred::Sge, W::B64) => K::Sge64,
        _ => return None,
    };
    Some(k)
}

/// One-lane-rotate shuffle mask (`mask[i] == (i+1) % lanes`) over a
/// full register — the Figure-8 check's permutation.
fn rot_mask(mask: &[u8], m: &VMeta) -> Option<UnKernel> {
    if !full_register(m) || mask.len() != m.lanes as usize {
        return None;
    }
    let lanes = m.lanes as usize;
    if !mask.iter().enumerate().all(|(i, &s)| s as usize == (i + 1) % lanes) {
        return None;
    }
    Some(match m.width {
        LaneWidth::B8 => UnKernel::Rot8,
        LaneWidth::B16 => UnKernel::Rot16,
        LaneWidth::B32 => UnKernel::Rot32,
        LaneWidth::B64 => UnKernel::Rot64,
    })
}

/// Compile one lowered instruction into a trace op, or `None` when it
/// cuts the trace (calls, builtins, atomics, gather/scatter, fences).
fn compile(inst: &LInst) -> Option<TOp> {
    let pc = Pc::of(inst.class);
    Some(match &inst.kind {
        LKind::Bin { op, m, dst, a, b } if m.scalar => {
            TOp::SBin { op: *op, m: *m, pc, dst: *dst, a: *a, b: *b }
        }
        LKind::Bin { op, m, dst, a, b } => match bin_kernel(*op, m) {
            Some(k) => TOp::VBinK { k, m: *m, pc, dst: *dst, a: *a, b: *b },
            None => TOp::VBinL { op: *op, m: *m, pc, dst: *dst, a: *a, b: *b },
        },
        LKind::Cmp { pred, m, dst, a, b, fused } if m.scalar => {
            if *fused {
                TOp::SCmpFused { m: *m, pred: *pred, dst: *dst, a: *a, b: *b }
            } else {
                TOp::SCmp { m: *m, pred: *pred, pc, dst: *dst, a: *a, b: *b }
            }
        }
        LKind::Cmp { pred, m, dst, a, b, .. } => match cmp_kernel(*pred, m) {
            Some(k) => TOp::VCmpK { k, m: *m, pc, dst: *dst, a: *a, b: *b },
            None => TOp::VCmpL { pred: *pred, m: *m, pc, dst: *dst, a: *a, b: *b },
        },
        LKind::Cast { op, from, to, dst, a } => {
            if from.scalar && to.scalar {
                TOp::SCast { op: *op, from: *from, to: *to, pc, dst: *dst, a: *a }
            } else {
                TOp::VCast { op: *op, from: *from, to: *to, pc, dst: *dst, a: *a }
            }
        }
        LKind::Select { m, cond_scalar, dst, cond, a, b } => {
            TOp::Sel { m: *m, cond_scalar: *cond_scalar, pc, dst: *dst, cond: *cond, a: *a, b: *b }
        }
        LKind::Gep { dst, base, index, scale } => {
            TOp::Gep { pc, dst: *dst, base: *base, index: *index, scale: *scale }
        }
        LKind::Load { m, dst, addr } => TOp::Load { m: *m, pc, dst: *dst, addr: *addr },
        LKind::Store { m, val, addr } => TOp::Store { m: *m, pc, val: *val, addr: *addr },
        LKind::Alloca { dst, elem_bytes, count } => {
            TOp::Alloca { pc, dst: *dst, elem_bytes: *elem_bytes, count: *count }
        }
        LKind::Extract { m, dst, vec, idx } => TOp::Extract { m: *m, pc, dst: *dst, vec: *vec, idx: *idx },
        LKind::Insert { m, dst, vec, val, idx } => {
            TOp::Insert { m: *m, pc, dst: *dst, vec: *vec, val: *val, idx: *idx }
        }
        LKind::Shuffle { m, dst, a, mask } => match rot_mask(mask, m) {
            Some(k) => TOp::ShufRot { k, m: *m, pc, dst: *dst, a: *a },
            None => TOp::Shuf { m: *m, pc, dst: *dst, a: *a, mask: mask.clone().into_boxed_slice() },
        },
        LKind::Splat { m, dst, val } => {
            TOp::Splat { m: *m, full: full_register(m), pc, dst: *dst, val: *val }
        }
        LKind::Ptest { m, dst, mask } => {
            TOp::Ptest { m: *m, full: full_register(m), pc, dst: *dst, mask: *mask }
        }
        LKind::Gather { m, dst, addrs } => TOp::Gather { m: *m, pc, dst: *dst, addrs: *addrs },
        LKind::Scatter { m, val, addrs } => TOp::Scatter { m: *m, pc, val: *val, addrs: *addrs },
        LKind::CallF { .. }
        | LKind::CallB { .. }
        | LKind::AtomicRmw { .. }
        | LKind::CmpXchg { .. }
        | LKind::Fence => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::Program;
    use elzar_ir::builder::{c64, FuncBuilder};
    use elzar_ir::{Builtin, Module, Ty};

    #[test]
    fn straight_line_code_forms_one_trace_ending_at_ret() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let x = b.add(c64(40), c64(2));
        let y = b.mul(x, c64(3));
        b.ret(y);
        m.add_func(b.finish());
        let p = Program::lower(&m);
        let tr = &p.traces[0][0];
        // Two ALU ops, no terminator (Ret cuts), both write slots.
        assert_eq!(tr.ops.len(), 2);
        assert_eq!(tr.writes, 2);
        assert!(matches!(tr.ops[0], TOp::SBin { op: BinOp::Add, .. }));
        assert!(matches!(tr.ops[1], TOp::SBin { op: BinOp::Mul, .. }));
    }

    #[test]
    fn builtins_cut_and_backedges_stay_out() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let n = b.call_builtin(Builtin::InputLen, vec![], Ty::I64).unwrap();
        b.counted_loop(c64(0), n, |b, i| {
            let _ = b.add(i, c64(1));
        });
        b.ret(c64(0));
        m.add_func(b.finish());
        let p = Program::lower(&m);
        // Entry block starts with a builtin: empty trace.
        assert!(p.traces[0][0].ops.is_empty());
        // Every trace is acyclic: jump targets are visited at most once.
        for tr in &p.traces[0] {
            let mut seen = vec![];
            for op in &tr.ops {
                if let TOp::Jump { target } = op {
                    assert!(!seen.contains(target), "trace revisits block {target}");
                    seen.push(*target);
                }
            }
        }
    }

    #[test]
    fn conditional_terminators_end_the_trace() {
        let mut m = Module::new("t");
        let mut b = FuncBuilder::new("main", vec![], Ty::I64);
        let c = b.icmp(elzar_ir::CmpPred::Ult, c64(1), c64(2));
        let t = b.block("t");
        let f = b.block("f");
        b.cond_br(c, t, f);
        b.switch_to(t);
        b.ret(c64(1));
        b.switch_to(f);
        b.ret(c64(0));
        m.add_func(b.finish());
        let p = Program::lower(&m);
        let tr = &p.traces[0][0];
        assert!(matches!(tr.ops.last(), Some(TOp::CondBr { .. })));
        // The fused compare carries no retire cost.
        assert!(matches!(tr.ops[0], TOp::SCmpFused { .. }));
    }

    #[test]
    fn full_register_vector_ops_pick_kernels() {
        let m4 = VMeta::new(false, false, 64, LaneWidth::B64, 4);
        assert!(full_register(&m4));
        assert_eq!(bin_kernel(BinOp::Add, &m4), Some(BinKernel::Add64));
        assert_eq!(bin_kernel(BinOp::UDiv, &m4), None, "div traps: per-lane");
        assert_eq!(cmp_kernel(CmpPred::Slt, &m4), Some(BinKernel::Slt64));
        assert_eq!(rot_mask(&[1, 2, 3, 0], &m4), Some(UnKernel::Rot64));
        assert_eq!(rot_mask(&[0, 1, 2, 3], &m4), None);
        // Esoteric width: i9 lives in 16-bit lanes but is not full-width.
        let m9 = VMeta::new(false, false, 9, LaneWidth::B16, 16);
        assert!(!full_register(&m9));
        assert_eq!(bin_kernel(BinOp::Add, &m9), None);
        let f8 = VMeta::new(false, true, 32, LaneWidth::B32, 8);
        assert_eq!(bin_kernel(BinOp::FMul, &f8), Some(BinKernel::FMul32));
        assert_eq!(cmp_kernel(CmpPred::FOlt, &f8), Some(BinKernel::FOlt32));
    }
}
