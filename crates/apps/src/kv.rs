//! Mini-memcached (§VI): a bucket-locked in-memory hash table serving
//! YCSB operations.
//!
//! The structure mirrors what makes the real Memcached result favourable
//! to ELZAR in the paper: a multi-megabyte table with random access (poor
//! memory locality amortizes wrapper overhead) and fine-grained per-bucket
//! locks (scales with threads).

use crate::ycsb::{encode, generate};
use crate::{AppParams, BuiltApp, ServeApp};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CmpPred, Const, Module, Operand, Ty};
use elzar_vm::{Memory, GLOBAL_BASE};
use elzar_workloads::common::{chunk_bounds, emit_thread_count, fork_join_main, MAX_WORKLOAD_THREADS};
use elzar_workloads::Scale;

const BUCKETS: i64 = 4096;
const SLOTS: i64 = 8;
const ENTRY: i64 = 16; // key u64 + value u64
const GOLD: i64 = 0x9E3779B97F4A7C15u64 as i64;
/// Value written by serving-mode updates — distinct from the preload
/// value (`key * GOLD`) so committed updates show up in table digests.
const UPD: i64 = 0xD1B54A32D192ED03u64 as i64;

fn cptr(addr: u64) -> Operand {
    Operand::Imm(Const::Ptr(addr))
}

/// Emit the table preload: insert every key into its bucket with value
/// `key * GOLD` (shared by the batch `main` and the serving init entry).
fn emit_preload(b: &mut FuncBuilder, table: u64, n_keys: u64) {
    let placed = b.alloca(Ty::I64, c64(1));
    b.counted_loop(c64(0), c64(n_keys as i64), |b, key| {
        let h = b.mul(key, c64(GOLD));
        let h2 = b.bin(BinOp::LShr, Ty::I64, h, c64(48));
        let bucket = b.bin(BinOp::And, Ty::I64, h2, c64(BUCKETS - 1));
        let base_idx = b.mul(bucket, c64(SLOTS * ENTRY));
        let bucket_ptr = b.gep(cptr(table), base_idx, 1);
        b.store(Ty::I64, c64(0), placed);
        b.counted_loop(c64(0), c64(SLOTS), |b, s| {
            let off = b.mul(s, c64(ENTRY));
            let pk = b.gep(bucket_ptr, off, 1);
            let k = b.load(Ty::I64, pk);
            let empty = b.icmp(CmpPred::Eq, k, c64(0));
            let pl = b.load(Ty::I64, placed);
            let todo = b.icmp(CmpPred::Eq, pl, c64(0));
            let we = b.cast(elzar_ir::CastOp::ZExt, empty, Ty::I64);
            let wt = b.cast(elzar_ir::CastOp::ZExt, todo, Ty::I64);
            let both = b.bin(BinOp::And, Ty::I64, we, wt);
            let go = b.icmp(CmpPred::Ne, both, c64(0));
            let ins_bb = b.block("pre.ins");
            let skip_bb = b.block("pre.skip");
            b.cond_br(go, ins_bb, skip_bb);
            b.switch_to(ins_bb);
            {
                let kk = b.add(key, c64(1));
                b.store(Ty::I64, kk, pk);
                let pv = b.gep(pk, c64(1), 8);
                let v = b.mul(key, c64(GOLD));
                b.store(Ty::I64, v, pv);
                b.store(Ty::I64, c64(1), placed);
                b.br(skip_bb);
            }
            b.switch_to(skip_bb);
        });
    });
}

/// Build the mini-memcached server processing a YCSB trace.
pub fn build(p: &AppParams) -> BuiltApp {
    let n_keys: u64 = p.scale.pick(1_024, 4_096, 8_192);
    let n_ops: usize = p.scale.pick(2_000, 20_000, 120_000);
    let w = p.workload;
    let mut m = Module::new(format!("memcached_{}", w.label()));
    let table = GLOBAL_BASE + m.alloc_global((BUCKETS * SLOTS * ENTRY) as usize) as u64;
    let locks = GLOBAL_BASE + m.alloc_global((BUCKETS * 8) as usize) as u64;
    let misses = GLOBAL_BASE + m.alloc_global(8) as u64;
    let acc_slots = GLOBAL_BASE + m.alloc_global(8 * MAX_WORKLOAD_THREADS as usize) as u64;

    // Shared op-processing routine: worker(tid).
    let mut wk = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
    let tid = wk.param(0);
    let nt = emit_thread_count(&mut wk);
    let inp = wk.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    let acc = wk.alloca(Ty::I64, c64(1));
    wk.store(Ty::I64, c64(0), acc);
    let found = wk.alloca(Ty::I64, c64(1));
    let (start, end) = chunk_bounds(&mut wk, tid, n_ops as i64, nt);
    wk.counted_loop(start, end, |b, i| {
        let pw = b.gep(inp, i, 8);
        let word = b.load(Ty::I64, pw);
        let key = b.bin(BinOp::And, Ty::I64, word, c64(!(1i64 << 63)));
        let is_read = b.bin(BinOp::LShr, Ty::I64, word, c64(63));
        // Multiplicative hash into a bucket.
        let h = b.mul(key, c64(GOLD));
        let h2 = b.bin(BinOp::LShr, Ty::I64, h, c64(48));
        let bucket = b.bin(BinOp::And, Ty::I64, h2, c64(BUCKETS - 1));
        let lock_addr = b.gep(cptr(locks), bucket, 8);
        b.call_builtin(Builtin::Lock, vec![lock_addr.into()], Ty::Void);
        {
            let base_idx = b.mul(bucket, c64(SLOTS * ENTRY));
            let bucket_ptr = b.gep(cptr(table), base_idx, 1);
            b.store(Ty::I64, c64(0), found);
            b.counted_loop(c64(0), c64(SLOTS), |b, s| {
                let off = b.mul(s, c64(ENTRY));
                let pk = b.gep(bucket_ptr, off, 1);
                let k = b.load(Ty::I64, pk);
                // Stored keys are key+1 so that 0 means empty.
                let kk = b.add(key, c64(1));
                let hit = b.icmp(CmpPred::Eq, k, kk);
                let hit_bb = b.block("kv.hit");
                let next_bb = b.block("kv.next");
                b.cond_br(hit, hit_bb, next_bb);
                b.switch_to(hit_bb);
                {
                    b.store(Ty::I64, c64(1), found);
                    let pv = b.gep(pk, c64(1), 8);
                    let rd = b.icmp(CmpPred::Ne, is_read, c64(0));
                    let rd_bb = b.block("kv.read");
                    let wr_bb = b.block("kv.write");
                    b.cond_br(rd, rd_bb, wr_bb);
                    b.switch_to(rd_bb);
                    {
                        let v = b.load(Ty::I64, pv);
                        let a = b.load(Ty::I64, acc);
                        let a2 = b.add(a, v);
                        b.store(Ty::I64, a2, acc);
                        b.br(next_bb);
                    }
                    b.switch_to(wr_bb);
                    {
                        // Deterministic value: independent of op order.
                        let nv = b.mul(key, c64(GOLD));
                        b.store(Ty::I64, nv, pv);
                        b.br(next_bb);
                    }
                }
                b.switch_to(next_bb);
            });
            let f = b.load(Ty::I64, found);
            let missed = b.icmp(CmpPred::Eq, f, c64(0));
            let miss_bb = b.block("kv.miss");
            let done_bb = b.block("kv.done");
            b.cond_br(missed, miss_bb, done_bb);
            b.switch_to(miss_bb);
            b.atomic_rmw(elzar_ir::RmwOp::Add, Ty::I64, cptr(misses), c64(1));
            b.br(done_bb);
            b.switch_to(done_bb);
        }
        b.call_builtin(Builtin::Unlock, vec![lock_addr.into()], Ty::Void);
    });
    // Publish this thread's read-sum.
    let myacc = wk.load(Ty::I64, acc);
    let slot = wk.gep(cptr(acc_slots), tid, 8);
    wk.store(Ty::I64, myacc, slot);
    wk.ret(c64(0));
    let wid = m.add_func(wk.finish());

    fork_join_main(
        &mut m,
        wid,
        move |b| emit_preload(b, table, n_keys),
        move |b, _| {
            // Merge per-thread read sums in tid order + miss count.
            let nt = emit_thread_count(b);
            let total = b.alloca(Ty::I64, c64(1));
            b.store(Ty::I64, c64(0), total);
            b.counted_loop(c64(0), nt, |b, t| {
                let pa = b.gep(cptr(acc_slots), t, 8);
                let v = b.load(Ty::I64, pa);
                let a = b.load(Ty::I64, total);
                let a2 = b.add(a, v);
                b.store(Ty::I64, a2, total);
            });
            let tv = b.load(Ty::I64, total);
            b.call_builtin(Builtin::OutputI64, vec![tv.into()], Ty::Void);
            let mi = b.load(Ty::I64, cptr(misses));
            b.call_builtin(Builtin::OutputI64, vec![mi.into()], Ty::Void);
            b.ret(c64(0));
        },
    );
    let ops = generate(w, n_ops, n_keys, 0x5EED ^ n_keys);
    BuiltApp { module: m, input: encode(&ops), ops: n_ops as u64 }
}

/// Emit the serving-form processing of one encoded YCSB op whose 8-byte
/// record ([`crate::ycsb::encode`] layout) sits at `req_ptr`: probe the
/// bucket, read or update, output `(found, value)`, and mark the
/// request's completion with a heartbeat (the serving runtime reads
/// heartbeat timestamps to attribute per-request latency inside
/// batches). Shared by the `serve_one` and `serve_batch` entries so the
/// two are request-for-request semantically identical.
fn emit_serve_op(b: &mut FuncBuilder, table: u64, req_ptr: Operand) {
    let word = b.load(Ty::I64, req_ptr);
    let key = b.bin(BinOp::And, Ty::I64, word, c64(!(1i64 << 63)));
    let is_read = b.bin(BinOp::LShr, Ty::I64, word, c64(63));
    let h = b.mul(key, c64(GOLD));
    let h2 = b.bin(BinOp::LShr, Ty::I64, h, c64(48));
    let bucket = b.bin(BinOp::And, Ty::I64, h2, c64(BUCKETS - 1));
    let base_idx = b.mul(bucket, c64(SLOTS * ENTRY));
    let bucket_ptr = b.gep(cptr(table), base_idx, 1);
    let found = b.alloca(Ty::I64, c64(1));
    let val = b.alloca(Ty::I64, c64(1));
    b.store(Ty::I64, c64(0), found);
    b.store(Ty::I64, c64(0), val);
    b.counted_loop(c64(0), c64(SLOTS), |b, s| {
        let off = b.mul(s, c64(ENTRY));
        let pk = b.gep(bucket_ptr, off, 1);
        let k = b.load(Ty::I64, pk);
        let kk = b.add(key, c64(1));
        let hit = b.icmp(CmpPred::Eq, k, kk);
        let hit_bb = b.block("srv.hit");
        let next_bb = b.block("srv.next");
        b.cond_br(hit, hit_bb, next_bb);
        b.switch_to(hit_bb);
        {
            b.store(Ty::I64, c64(1), found);
            let pv = b.gep(pk, c64(1), 8);
            let rd = b.icmp(CmpPred::Ne, is_read, c64(0));
            let rd_bb = b.block("srv.read");
            let wr_bb = b.block("srv.write");
            b.cond_br(rd, rd_bb, wr_bb);
            b.switch_to(rd_bb);
            {
                let v = b.load(Ty::I64, pv);
                b.store(Ty::I64, v, val);
                b.br(next_bb);
            }
            b.switch_to(wr_bb);
            {
                let nv = b.mul(key, c64(UPD));
                b.store(Ty::I64, nv, pv);
                b.store(Ty::I64, nv, val);
                b.br(next_bb);
            }
        }
        b.switch_to(next_bb);
    });
    let f = b.load(Ty::I64, found);
    let v = b.load(Ty::I64, val);
    b.call_builtin(Builtin::OutputI64, vec![f.into()], Ty::Void);
    b.call_builtin(Builtin::OutputI64, vec![v.into()], Ty::Void);
    b.call_builtin(Builtin::Heartbeat, vec![], Ty::Void);
}

/// Build the mini-memcached server in *serving* form: a `main` entry
/// that preloads the resident table once, a `serve_one` entry that
/// processes exactly one encoded YCSB op (8 bytes, [`crate::ycsb::encode`]
/// layout) from the input segment, and a `serve_batch` entry that
/// processes a count-prefixed mini-trace of such ops in one invocation
/// (`Machine::reenter_batch` layout), outputting `(found, value)` per
/// op.
///
/// A request is single-threaded — the serving runtime's shards provide
/// the concurrency — so the per-bucket locks of the batch build are
/// unnecessary here.
pub fn build_serve(scale: Scale) -> ServeApp {
    let n_keys: u64 = scale.pick(1_024, 4_096, 8_192);
    let mut m = Module::new("memcached_serve");
    let table = GLOBAL_BASE + m.alloc_global((BUCKETS * SLOTS * ENTRY) as usize) as u64;

    let mut ib = FuncBuilder::new("main", vec![], Ty::I64);
    emit_preload(&mut ib, table, n_keys);
    ib.ret(c64(0));
    m.add_func(ib.finish());

    let mut sb = FuncBuilder::new("serve_one", vec![], Ty::I64);
    let inp = sb.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    emit_serve_op(&mut sb, table, inp.into());
    sb.ret(c64(0));
    m.add_func(sb.finish());

    let mut bb = FuncBuilder::new("serve_batch", vec![], Ty::I64);
    let inp = bb.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    let count = bb.load(Ty::I64, inp);
    bb.counted_loop(c64(0), count, |b, i| {
        let off = b.mul(i, c64(8));
        let rec = b.gep(inp, off, 1);
        let req = b.gep(rec, c64(8), 1);
        emit_serve_op(b, table, req.into());
    });
    bb.ret(c64(0));
    m.add_func(bb.finish());

    ServeApp {
        module: m,
        init_entry: "main",
        request_entry: "serve_one",
        batch_entry: "serve_batch",
        table_base: table,
        n_keys,
        request_bytes: 8,
        key_of: serve_request_key,
    }
}

/// Routing key of one encoded YCSB request ([`crate::ycsb::encode`]
/// layout: `key | read << 63` little-endian): the key with the op bit
/// masked off. Host-side mirror of the key extraction `serve_one`
/// performs, used to route, partition and migrate serving traffic.
pub fn serve_request_key(req: &[u8]) -> u64 {
    let word = u64::from_le_bytes(req[..8].try_into().expect("kv request is at least 8 bytes"));
    word & !(1 << 63)
}

/// Host-side lookup mirroring the serve module's bucket layout: probe
/// `key`'s bucket in a shard's resident memory and return its stored
/// value. Used to digest the final table state.
pub fn serve_lookup(mem: &Memory, table_base: u64, key: u64) -> Option<u64> {
    let bucket = (key.wrapping_mul(GOLD as u64) >> 48) & (BUCKETS as u64 - 1);
    let bucket_addr = table_base + bucket * (SLOTS * ENTRY) as u64;
    for s in 0..SLOTS as u64 {
        let pk = bucket_addr + s * ENTRY as u64;
        if mem.load(pk, 8).ok()? == key.wrapping_add(1) {
            return mem.load(pk + 8, 8).ok();
        }
    }
    None
}
