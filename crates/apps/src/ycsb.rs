//! YCSB-style workload generation (§VI): workload A (50% reads, 50%
//! updates, Zipf key distribution) and workload D (95% reads, 5% updates,
//! "latest" distribution — reads skew to recently inserted keys).

use crate::common_rng::lcg;

/// The two extreme YCSB workloads the paper evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum YcsbWorkload {
    /// 50% reads / 50% updates, Zipfian.
    A,
    /// 95% reads / 5% updates, latest-skewed.
    D,
}

impl YcsbWorkload {
    /// Label used in Figure 15.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::D => "D",
        }
    }
}

/// One key-value operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct YcsbOp {
    /// Read (true) or update (false).
    pub read: bool,
    /// Key index in `[0, n_keys)`.
    pub key: u64,
}

/// Zipf(θ=0.99) sampler over `n` items using an inverse-CDF table.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the distribution for `n` items.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Zipf {
        assert!(n > 0);
        const THETA: f64 = 0.99;
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(THETA);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Sample a rank in `[0, n)` (0 = most popular) from a uniform `u64`.
    pub fn sample(&self, r: u64) -> u64 {
        let u = (r >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

/// Generate `n_ops` operations over `n_keys` keys.
pub fn generate(w: YcsbWorkload, n_ops: usize, n_keys: u64, seed: u64) -> Vec<YcsbOp> {
    let zipf = Zipf::new(n_keys.min(1 << 16) as usize);
    let mut s = seed | 1;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let r1 = lcg(&mut s);
        let r2 = lcg(&mut s);
        let read = match w {
            YcsbWorkload::A => r1 % 100 < 50,
            YcsbWorkload::D => r1 % 100 < 95,
        };
        let rank = zipf.sample(r2) % n_keys;
        let key = match w {
            // Zipf over the whole key space.
            YcsbWorkload::A => rank,
            // "Latest": popularity decreasing from the newest key.
            YcsbWorkload::D => n_keys - 1 - rank,
        };
        ops.push(YcsbOp { read, key });
    }
    ops
}

/// Encode operations into the VM input segment: 8 bytes per op, the key
/// in the low 63 bits, the read flag in the top bit.
pub fn encode(ops: &[YcsbOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ops.len() * 8);
    for op in ops {
        let word = op.key | (u64::from(op.read) << 63);
        out.extend_from_slice(&word.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let z = Zipf::new(1000);
        let mut s = 42u64;
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            let r = z.sample(lcg(&mut s));
            assert!(r < 1000);
            if r < 10 {
                head += 1;
            }
        }
        // With θ=0.99, the top-10 of 1000 keys draw ~30%+ of accesses.
        assert!(head as f64 / n as f64 > 0.2, "head share {}", head as f64 / n as f64);
    }

    #[test]
    fn workload_mixes_match_spec() {
        let a = generate(YcsbWorkload::A, 10_000, 500, 1);
        let reads_a = a.iter().filter(|o| o.read).count() as f64 / a.len() as f64;
        assert!((0.45..0.55).contains(&reads_a), "A read ratio {reads_a}");
        let d = generate(YcsbWorkload::D, 10_000, 500, 1);
        let reads_d = d.iter().filter(|o| o.read).count() as f64 / d.len() as f64;
        assert!((0.92..0.98).contains(&reads_d), "D read ratio {reads_d}");
    }

    #[test]
    fn latest_skews_to_high_keys() {
        let d = generate(YcsbWorkload::D, 10_000, 1000, 2);
        let high = d.iter().filter(|o| o.key >= 900).count() as f64 / d.len() as f64;
        assert!(high > 0.3, "latest high-key share {high}");
    }

    #[test]
    fn encode_roundtrip() {
        let ops = vec![YcsbOp { read: true, key: 7 }, YcsbOp { read: false, key: 123 }];
        let bytes = encode(&ops);
        assert_eq!(bytes.len(), 16);
        let w0 = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        assert_eq!(w0 & (1 << 63), 1 << 63);
        assert_eq!(w0 & !(1 << 63), 7);
        let w1 = u64::from_le_bytes(bytes[8..].try_into().unwrap());
        assert_eq!(w1, 123);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(YcsbWorkload::A, 100, 50, 9), generate(YcsbWorkload::A, 100, 50, 9));
    }
}
