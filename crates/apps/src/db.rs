//! Mini-SQLite (§VI): an in-memory sorted table behind one global lock.
//!
//! Two properties drive the paper's SQLite results: the engine is
//! "thread-safe but not concurrent" (every operation takes the global
//! mutex, so throughput *decreases* with threads), and lookups go through
//! comparator function calls (sqlite's dispatch), which are exactly the
//! call-wrapper-heavy code ELZAR handles worst (20–30% of native).

use crate::ycsb::{encode, generate};
use crate::{AppParams, BuiltApp};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, CmpPred, Const, Module, Operand, Ty};
use elzar_vm::GLOBAL_BASE;
use elzar_workloads::common::{chunk_bounds, emit_thread_count, fork_join_main, MAX_WORKLOAD_THREADS};

const GOLD: i64 = 0x9E3779B97F4A7C15u64 as i64;

fn cptr(addr: u64) -> Operand {
    Operand::Imm(Const::Ptr(addr))
}

/// Build the mini-SQLite engine processing a YCSB trace.
pub fn build(p: &AppParams) -> BuiltApp {
    let n_keys: u64 = p.scale.pick(1_024, 4_096, 8_192);
    let n_ops: usize = p.scale.pick(1_000, 8_000, 50_000);
    let w = p.workload;
    let mut m = Module::new(format!("sqlite_{}", w.label()));
    // Sorted key column + value column (keys are just 0..n, kept sorted).
    let keys_col = GLOBAL_BASE + m.alloc_global(n_keys as usize * 8) as u64;
    let vals_col = GLOBAL_BASE + m.alloc_global(n_keys as usize * 8) as u64;
    let mutex = GLOBAL_BASE + m.alloc_global(8) as u64;
    let acc_slots = GLOBAL_BASE + m.alloc_global(8 * MAX_WORKLOAD_THREADS as usize) as u64;

    // Comparator as a separate function — models sqlite's collation
    // dispatch. cmp(row_ptr, key) -> -1/0/1.
    let mut cb = FuncBuilder::new("row_cmp", vec![Ty::Ptr, Ty::I64], Ty::I64);
    let rp = cb.param(0);
    let target = cb.param(1);
    let k = cb.load(Ty::I64, rp);
    let lt = cb.icmp(CmpPred::Slt, k, target);
    let gt = cb.icmp(CmpPred::Sgt, k, target);
    let gtv = cb.select(gt, c64(1), c64(0));
    let out = cb.select(lt, c64(-1), gtv);
    cb.ret(out);
    let cmp_f = m.add_func(cb.finish());

    let mut wk = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
    let tid = wk.param(0);
    let nt = emit_thread_count(&mut wk);
    let inp = wk.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    let acc = wk.alloca(Ty::I64, c64(1));
    wk.store(Ty::I64, c64(0), acc);
    let lo = wk.alloca(Ty::I64, c64(1));
    let hi = wk.alloca(Ty::I64, c64(1));
    let pos = wk.alloca(Ty::I64, c64(1));
    let (start, end) = chunk_bounds(&mut wk, tid, n_ops as i64, nt);
    wk.counted_loop(start, end, |b, i| {
        let pw = b.gep(inp, i, 8);
        let word = b.load(Ty::I64, pw);
        let key = b.bin(BinOp::And, Ty::I64, word, c64(!(1i64 << 63)));
        let is_read = b.bin(BinOp::LShr, Ty::I64, word, c64(63));
        // The whole operation holds the global lock (sqlite semantics).
        b.critical_section(cptr(mutex), |b| {
            // Binary search with comparator calls.
            b.store(Ty::I64, c64(0), lo);
            b.store(Ty::I64, c64(n_keys as i64), hi);
            b.store(Ty::I64, c64(-1), pos);
            let iters = i64::from(64 - n_keys.leading_zeros()) + 1;
            b.counted_loop(c64(0), c64(iters), |b, _| {
                let l = b.load(Ty::I64, lo);
                let h = b.load(Ty::I64, hi);
                let open = b.icmp(CmpPred::Slt, l, h);
                let go_bb = b.block("db.probe");
                let skip_bb = b.block("db.skip");
                b.cond_br(open, go_bb, skip_bb);
                b.switch_to(go_bb);
                {
                    let sum = b.add(l, h);
                    let mid = b.bin(BinOp::LShr, Ty::I64, sum, c64(1));
                    let rp = b.gep(cptr(keys_col), mid, 8);
                    let c = b.call(cmp_f, vec![rp.into(), key.into()], Ty::I64).unwrap();
                    let less = b.icmp(CmpPred::Slt, c, c64(0));
                    let eq = b.icmp(CmpPred::Eq, c, c64(0));
                    // if eq: pos = mid, close the range.
                    let eq_bb = b.block("db.eq");
                    let ne_bb = b.block("db.ne");
                    b.cond_br(eq, eq_bb, ne_bb);
                    b.switch_to(eq_bb);
                    {
                        b.store(Ty::I64, mid, pos);
                        b.store(Ty::I64, c64(0), lo);
                        b.store(Ty::I64, c64(0), hi);
                        b.br(skip_bb);
                    }
                    b.switch_to(ne_bb);
                    {
                        let mid1 = b.add(mid, c64(1));
                        let nl = b.select(less, mid1, l);
                        let nh = b.select(less, h, mid);
                        b.store(Ty::I64, nl, lo);
                        b.store(Ty::I64, nh, hi);
                        b.br(skip_bb);
                    }
                }
                b.switch_to(skip_bb);
            });
            let found = b.load(Ty::I64, pos);
            let ok = b.icmp(CmpPred::Sge, found, c64(0));
            let hit_bb = b.block("db.hit");
            let out_bb = b.block("db.out");
            b.cond_br(ok, hit_bb, out_bb);
            b.switch_to(hit_bb);
            {
                let pv = b.gep(cptr(vals_col), found, 8);
                let rd = b.icmp(CmpPred::Ne, is_read, c64(0));
                let rd_bb = b.block("db.read");
                let wr_bb = b.block("db.write");
                b.cond_br(rd, rd_bb, wr_bb);
                b.switch_to(rd_bb);
                {
                    let v = b.load(Ty::I64, pv);
                    let a = b.load(Ty::I64, acc);
                    let a2 = b.add(a, v);
                    b.store(Ty::I64, a2, acc);
                    b.br(out_bb);
                }
                b.switch_to(wr_bb);
                {
                    let nv = b.mul(key, c64(GOLD));
                    b.store(Ty::I64, nv, pv);
                    b.br(out_bb);
                }
            }
            b.switch_to(out_bb);
        });
    });
    let myacc = wk.load(Ty::I64, acc);
    let slot = wk.gep(cptr(acc_slots), tid, 8);
    wk.store(Ty::I64, myacc, slot);
    wk.ret(c64(0));
    let wid = m.add_func(wk.finish());

    fork_join_main(
        &mut m,
        wid,
        move |b| {
            // Populate the sorted table: key i at row i, value i*GOLD.
            b.counted_loop(c64(0), c64(n_keys as i64), |b, i| {
                let pk = b.gep(cptr(keys_col), i, 8);
                b.store(Ty::I64, i, pk);
                let pv = b.gep(cptr(vals_col), i, 8);
                let v = b.mul(i, c64(GOLD));
                b.store(Ty::I64, v, pv);
            });
        },
        move |b, _| {
            let nt = emit_thread_count(b);
            let total = b.alloca(Ty::I64, c64(1));
            b.store(Ty::I64, c64(0), total);
            b.counted_loop(c64(0), nt, |b, t| {
                let pa = b.gep(cptr(acc_slots), t, 8);
                let v = b.load(Ty::I64, pa);
                let a = b.load(Ty::I64, total);
                let a2 = b.add(a, v);
                b.store(Ty::I64, a2, total);
            });
            let tv = b.load(Ty::I64, total);
            b.call_builtin(Builtin::OutputI64, vec![tv.into()], Ty::Void);
            b.ret(c64(0));
        },
    );
    let ops = generate(w, n_ops, n_keys, 0xDB5EED);
    BuiltApp { module: m, input: encode(&ops), ops: n_ops as u64 }
}
