//! # elzar-apps
//!
//! The paper's three real-world case studies (§VI) as IR programs:
//!
//! * [`kv`] — mini-memcached: bucket-locked hash table, scales with
//!   threads, poor memory locality (ELZAR reaches 72–85% of native);
//! * [`db`] — mini-SQLite: one global lock + comparator-call binary
//!   search, *reverse* scalability (ELZAR's worst case, 20–30%);
//! * [`web`] — mini-Apache: hardened request parsing + unhardened
//!   library page copies (ELZAR ≈ 85%);
//!
//! plus a YCSB generator ([`ycsb`]) with the two extreme workloads the
//! paper uses (A: 50/50 Zipf; D: 95/5 latest).

#![warn(missing_docs)]

pub mod db;
pub mod kv;
pub mod web;
pub mod ycsb;

/// RNG shared with the workload crate (re-exported for `ycsb`).
pub mod common_rng {
    pub use elzar_workloads::common::lcg;
}

use elzar_ir::Module;
pub use elzar_workloads::Scale;
pub use ycsb::{YcsbOp, YcsbWorkload, Zipf};

/// Case-study build parameters. App modules are thread-count-agnostic:
/// the server worker count comes from `MachineConfig::threads` at run
/// time, so one built app serves a whole thread sweep.
#[derive(Clone, Copy, Debug)]
pub struct AppParams {
    /// Problem size.
    pub scale: Scale,
    /// YCSB workload (ignored by the web server).
    pub workload: YcsbWorkload,
}

impl AppParams {
    /// Convenience constructor.
    pub fn new(scale: Scale, workload: YcsbWorkload) -> AppParams {
        AppParams { scale, workload }
    }
}

/// A built case study: module + input + the operation count used for
/// throughput reporting.
#[derive(Clone, Debug)]
pub struct BuiltApp {
    /// The program.
    pub module: Module,
    /// Input bytes (the encoded request/op trace).
    pub input: Vec<u8>,
    /// Operations the run performs (messages/queries/requests).
    pub ops: u64,
}

/// A case study packaged for the serving runtime (`elzar_serve`): the
/// batch builders above run a whole trace per `main` invocation; a
/// `ServeApp` instead exposes a one-shot init entry that builds the
/// resident state (tables, buffers), a per-request entry that serves
/// exactly one encoded request from the input segment, and a batched
/// entry that serves a count-prefixed mini-trace of requests in one
/// invocation, replying through the output builtins.
///
/// Every request path — single or batched — emits exactly one
/// `heartbeat` at the request's completion; the serving runtime reads
/// the heartbeat timestamps to attribute per-request latency inside a
/// batch.
#[derive(Clone, Debug)]
pub struct ServeApp {
    /// The program (init + per-request + batched entries).
    pub module: Module,
    /// Entry run once when a shard VM boots (preload resident state).
    pub init_entry: &'static str,
    /// Entry run per request (input segment = one encoded request).
    pub request_entry: &'static str,
    /// Entry run per *batch*: the input segment holds a `u64` request
    /// count followed by that many [`ServeApp::request_bytes`]-stride
    /// records (`Machine::reenter_batch` layout); semantically
    /// equivalent to running [`ServeApp::request_entry`] once per
    /// record, in order.
    pub batch_entry: &'static str,
    /// Base address of the resident KV table, `0` when stateless.
    pub table_base: u64,
    /// Keys preloaded into the table, `0` when stateless.
    pub n_keys: u64,
    /// Encoded size of one request in bytes.
    pub request_bytes: usize,
    /// Routing key of an encoded request payload — the host-side mirror
    /// of whatever the hardened entry derives its data placement from
    /// (the KV op's key, the web parse hash). The serving runtime uses
    /// it to route requests, partition the keyspace into migratable
    /// ranges, and filter committed-suffix replays when a key range
    /// moves between shards, so it must stay bit-identical to the IR.
    pub key_of: fn(&[u8]) -> u64,
}

/// The three case studies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum App {
    /// Mini-memcached.
    Memcached,
    /// Mini-SQLite.
    Sqlite,
    /// Mini-Apache.
    Apache,
}

impl App {
    /// All apps in the paper's order.
    pub fn all() -> [App; 3] {
        [App::Memcached, App::Sqlite, App::Apache]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            App::Memcached => "memcached",
            App::Sqlite => "sqlite3",
            App::Apache => "apache",
        }
    }

    /// Build the app with the given parameters.
    pub fn build(self, p: &AppParams) -> BuiltApp {
        match self {
            App::Memcached => kv::build(p),
            App::Sqlite => db::build(p),
            App::Apache => web::build(p),
        }
    }
}

/// Simulated core frequency used for throughput conversion (the paper's
/// testbed ran at 2.0 GHz).
pub const FREQ_HZ: f64 = 2.0e9;

/// Throughput in operations/second given a run's cycle count.
pub fn throughput(ops: u64, cycles: u64) -> f64 {
    if cycles == 0 {
        0.0
    } else {
        ops as f64 * FREQ_HZ / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elzar::{execute, Mode};
    use elzar_vm::{MachineConfig, RunOutcome};

    fn cfg() -> MachineConfig {
        cfg_t(2)
    }

    fn cfg_t(threads: u32) -> MachineConfig {
        MachineConfig { step_limit: 3_000_000_000, threads, ..MachineConfig::default() }
    }

    #[test]
    fn apps_run_and_agree_across_modes() {
        for app in App::all() {
            for w in [YcsbWorkload::A, YcsbWorkload::D] {
                let built = app.build(&AppParams::new(Scale::Tiny, w));
                let native = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg());
                assert!(
                    matches!(native.outcome, RunOutcome::Exited(_)),
                    "{} ({}): {:?}",
                    app.name(),
                    w.label(),
                    native.outcome
                );
                let elz = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
                assert_eq!(native.outcome, elz.outcome, "{}", app.name());
                assert_eq!(native.output, elz.output, "{} output diverged", app.name());
            }
        }
    }

    #[test]
    fn apps_are_thread_count_invariant() {
        for app in App::all() {
            // One build, different runtime worker counts.
            let built = app.build(&AppParams::new(Scale::Tiny, YcsbWorkload::A));
            let r1 = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg_t(1));
            let r3 = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg_t(3));
            assert_eq!(r1.output, r3.output, "{}: thread count changed results", app.name());
        }
    }

    #[test]
    fn memcached_scales_sqlite_does_not() {
        let p = AppParams::new(Scale::Small, YcsbWorkload::A);
        let mc = App::Memcached.build(&p);
        let r1 = execute(&mc.module, &Mode::NativeNoSimd, &mc.input, cfg_t(1));
        let r4 = execute(&mc.module, &Mode::NativeNoSimd, &mc.input, cfg_t(4));
        let t1 = throughput(mc.ops, r1.cycles);
        let t4 = throughput(mc.ops, r4.cycles);
        assert!(t4 > t1 * 1.8, "memcached should scale: {t1:.0} -> {t4:.0} ops/s");

        let db = App::Sqlite.build(&p);
        let s1 = execute(&db.module, &Mode::NativeNoSimd, &db.input, cfg_t(1));
        let s4 = execute(&db.module, &Mode::NativeNoSimd, &db.input, cfg_t(4));
        let u1 = throughput(db.ops, s1.cycles);
        let u4 = throughput(db.ops, s4.cycles);
        assert!(u4 < u1 * 1.3, "sqlite must not scale (global lock): {u1:.0} -> {u4:.0} ops/s");
    }

    #[test]
    fn serve_entries_process_single_requests() {
        use elzar_vm::Machine;
        // KV: init preloads, then one read and one update round-trip
        // through a resident machine.
        let app = kv::build_serve(Scale::Tiny);
        let prog = elzar::build(&app.module, &Mode::elzar_default());
        let mut m = Machine::start(&prog, app.init_entry, &[], cfg());
        let o = m.run_to_completion();
        assert!(matches!(o, RunOutcome::Exited(0)), "init: {o:?}");

        let read7 = ycsb::encode(&[YcsbOp { read: true, key: 7 }]);
        m.reenter(app.request_entry, &read7);
        let o = m.run_to_completion();
        let r = m.result(o);
        assert!(matches!(o, RunOutcome::Exited(0)), "read: {o:?}");
        assert_eq!(u64::from_le_bytes(r.output[..8].try_into().unwrap()), 1, "key 7 preloaded");
        let preloaded = u64::from_le_bytes(r.output[8..16].try_into().unwrap());
        assert_eq!(preloaded, 7u64.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(kv::serve_lookup(m.memory(), app.table_base, 7), Some(preloaded));

        let upd7 = ycsb::encode(&[YcsbOp { read: false, key: 7 }]);
        m.reenter(app.request_entry, &upd7);
        let o = m.run_to_completion();
        assert!(matches!(o, RunOutcome::Exited(0)));
        let updated = kv::serve_lookup(m.memory(), app.table_base, 7).unwrap();
        assert_ne!(updated, preloaded, "update must be observable in the table");

        // Web: stateless page serve replies with the request hash.
        let web = web::build_serve(Scale::Tiny);
        let wprog = elzar::build(&web.module, &Mode::elzar_default());
        let mut wm = Machine::start(&wprog, web.init_entry, &[], cfg());
        assert!(matches!(wm.run_to_completion(), RunOutcome::Exited(0)));
        let req = vec![0x41u8; web.request_bytes];
        wm.reenter(web.request_entry, &req);
        let o = wm.run_to_completion();
        let r = wm.result(o);
        assert!(matches!(o, RunOutcome::Exited(0)), "web: {o:?}");
        assert_eq!(r.output.len(), 8);
        assert!(r.heartbeats >= 1, "page serve emits a heartbeat");
    }

    #[test]
    fn elzar_hits_sqlite_hardest_and_apache_least() {
        let p = AppParams::new(Scale::Small, YcsbWorkload::A);
        let mut rel = std::collections::HashMap::new();
        for app in App::all() {
            let built = app.build(&p);
            let native = execute(&built.module, &Mode::NativeNoSimd, &built.input, cfg());
            let elz = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
            rel.insert(app.name(), native.cycles as f64 / elz.cycles as f64);
        }
        // §VI: apache ≈ 85%, memcached 72–85%, sqlite 20–30% of native.
        assert!(
            rel["apache"] > rel["sqlite3"],
            "apache {:.2} should retain more than sqlite {:.2}",
            rel["apache"],
            rel["sqlite3"]
        );
        assert!(
            rel["memcached"] > rel["sqlite3"],
            "memcached {:.2} should retain more than sqlite {:.2}",
            rel["memcached"],
            rel["sqlite3"]
        );
    }
}
