//! Mini-Apache (§VI): a thread-pool web server repeatedly serving one
//! static page.
//!
//! The paper attributes Apache's good ELZAR result (~85% of native
//! throughput) to the server spending most of its time in *unhardened
//! third-party libraries*: here, request parsing is hardened application
//! code, while the page copy goes through the runtime's `memcpy` —
//! exactly the split the real build had.

use crate::{AppParams, BuiltApp};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, Const, Module, Operand, Ty};
use elzar_vm::GLOBAL_BASE;
use elzar_workloads::common::{chunk_bounds, fork_join_main, gen_bytes};

const REQ_BYTES: i64 = 64;

fn cptr(addr: u64) -> Operand {
    Operand::Imm(Const::Ptr(addr))
}

/// Build the mini web server.
pub fn build(p: &AppParams) -> BuiltApp {
    let page_bytes: i64 = p.scale.pick(16 * 1024, 32 * 1024, 64 * 1024);
    let n_req: usize = p.scale.pick(100, 600, 3_000);
    let mut m = Module::new("apache");
    let page = GLOBAL_BASE + m.add_global_data(&gen_bytes(0xAB, page_bytes as usize)) as u64;
    let hash_slots = GLOBAL_BASE + m.alloc_global(8 * p.threads as usize) as u64;

    let mut wk = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
    let tid = wk.param(0);
    let inp = wk.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    // Per-thread response buffer.
    let resp = wk.call_builtin(Builtin::Malloc, vec![c64(page_bytes)], Ty::Ptr).unwrap();
    let hacc = wk.alloca(Ty::I64, c64(1));
    wk.store(Ty::I64, c64(0), hacc);
    let (start, end) = chunk_bounds(&mut wk, tid, n_req as i64, p.threads);
    wk.counted_loop(start, end, |b, r| {
        // Parse the request line (hardened application code): FNV over
        // the 16-byte method/path prefix, hash carried in a register.
        let roff = b.mul(r, c64(REQ_BYTES));
        let req = b.gep(inp, roff, 1);
        let pre = b.current();
        let header = b.block("web.ph");
        let body = b.block("web.pb");
        let latch = b.block("web.pl");
        let exit = b.block("web.pe");
        b.br(header);
        b.switch_to(header);
        let i = b.phi(Ty::I64);
        let hphi = b.phi(Ty::I64);
        b.phi_add_incoming(i, pre, c64(0));
        b.phi_add_incoming(hphi, pre, c64(0xcbf29ce484222325u64 as i64));
        let c = b.icmp(elzar_ir::CmpPred::Slt, i, c64(16));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let pb = b.gep(req, i, 1);
        let byte = b.load(Ty::I8, pb);
        let wbyte = b.cast(elzar_ir::CastOp::ZExt, byte, Ty::I64);
        let x = b.bin(BinOp::Xor, Ty::I64, hphi, wbyte);
        let nx = b.mul(x, c64(0x100000001b3));
        b.br(latch);
        b.switch_to(latch);
        let i1 = b.add(i, c64(1));
        b.phi_add_incoming(i, latch, i1);
        b.phi_add_incoming(hphi, latch, nx);
        b.br(header);
        b.switch_to(exit);
        let a = b.load(Ty::I64, hacc);
        let a2 = b.add(a, hphi);
        b.store(Ty::I64, a2, hacc);
        // Serve the page (unhardened library copy — sendfile/memcpy).
        b.call_builtin(Builtin::Memcpy, vec![resp.into(), cptr(page), c64(page_bytes)], Ty::Void);
        b.call_builtin(Builtin::Heartbeat, vec![], Ty::Void);
    });
    let hv = wk.load(Ty::I64, hacc);
    let slot = wk.gep(cptr(hash_slots), tid, 8);
    wk.store(Ty::I64, hv, slot);
    wk.ret(c64(0));
    let wid = m.add_func(wk.finish());

    let threads = p.threads;
    fork_join_main(
        &mut m,
        wid,
        threads,
        |_b| {},
        move |b, _| {
            let mut total: Operand = c64(0);
            for t in 0..threads {
                let pa = b.gep(cptr(hash_slots + u64::from(t) * 8), c64(0), 8);
                let v = b.load(Ty::I64, pa);
                total = b.add(total, v).into();
            }
            b.call_builtin(Builtin::OutputI64, vec![total], Ty::Void);
            b.ret(c64(0));
        },
    );
    BuiltApp { module: m, input: gen_bytes(0xAC, n_req * REQ_BYTES as usize), ops: n_req as u64 }
}
