//! Mini-Apache (§VI): a thread-pool web server repeatedly serving one
//! static page.
//!
//! The paper attributes Apache's good ELZAR result (~85% of native
//! throughput) to the server spending most of its time in *unhardened
//! third-party libraries*: here, request parsing is hardened application
//! code, while the page copy goes through the runtime's `memcpy` —
//! exactly the split the real build had.

use crate::{AppParams, BuiltApp, ServeApp};
use elzar_ir::builder::{c64, FuncBuilder};
use elzar_ir::{BinOp, Builtin, Const, Module, Operand, Ty, ValueId};
use elzar_vm::GLOBAL_BASE;
use elzar_workloads::common::{
    chunk_bounds, emit_thread_count, fork_join_main, gen_bytes, MAX_WORKLOAD_THREADS,
};
use elzar_workloads::Scale;

const REQ_BYTES: i64 = 64;

fn cptr(addr: u64) -> Operand {
    Operand::Imm(Const::Ptr(addr))
}

/// Host-side mirror of the emitted request parse: FNV-1a over the
/// 16-byte method/path prefix. The serving runtime routes web requests
/// by this hash, so it must stay bit-identical to the IR loop below.
pub fn parse_hash(req: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in req.iter().take(16) {
        h = (h ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    h
}

/// Emit the hardened request parse: FNV-1a over the 16-byte method/path
/// prefix at `req`, hash carried in a register. Leaves the builder in
/// the loop's exit block and returns the hash value (shared by the
/// batch worker and the serving entry; host mirror: [`parse_hash`]).
fn emit_parse(b: &mut FuncBuilder, req: ValueId) -> ValueId {
    let pre = b.current();
    let header = b.block("web.ph");
    let body = b.block("web.pb");
    let latch = b.block("web.pl");
    let exit = b.block("web.pe");
    b.br(header);
    b.switch_to(header);
    let i = b.phi(Ty::I64);
    let hphi = b.phi(Ty::I64);
    b.phi_add_incoming(i, pre, c64(0));
    b.phi_add_incoming(hphi, pre, c64(0xcbf29ce484222325u64 as i64));
    let c = b.icmp(elzar_ir::CmpPred::Slt, i, c64(16));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let pb = b.gep(req, i, 1);
    let byte = b.load(Ty::I8, pb);
    let wbyte = b.cast(elzar_ir::CastOp::ZExt, byte, Ty::I64);
    let x = b.bin(BinOp::Xor, Ty::I64, hphi, wbyte);
    let nx = b.mul(x, c64(0x100000001b3));
    b.br(latch);
    b.switch_to(latch);
    let i1 = b.add(i, c64(1));
    b.phi_add_incoming(i, latch, i1);
    b.phi_add_incoming(hphi, latch, nx);
    b.br(header);
    b.switch_to(exit);
    hphi
}

/// Build the mini web server.
pub fn build(p: &AppParams) -> BuiltApp {
    let page_bytes: i64 = p.scale.pick(16 * 1024, 32 * 1024, 64 * 1024);
    let n_req: usize = p.scale.pick(100, 600, 3_000);
    let mut m = Module::new("apache");
    let page = GLOBAL_BASE + m.add_global_data(&gen_bytes(0xAB, page_bytes as usize)) as u64;
    let hash_slots = GLOBAL_BASE + m.alloc_global(8 * MAX_WORKLOAD_THREADS as usize) as u64;

    let mut wk = FuncBuilder::new("worker", vec![Ty::I64], Ty::I64);
    let tid = wk.param(0);
    let nt = emit_thread_count(&mut wk);
    let inp = wk.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    // Per-thread response buffer.
    let resp = wk.call_builtin(Builtin::Malloc, vec![c64(page_bytes)], Ty::Ptr).unwrap();
    let hacc = wk.alloca(Ty::I64, c64(1));
    wk.store(Ty::I64, c64(0), hacc);
    let (start, end) = chunk_bounds(&mut wk, tid, n_req as i64, nt);
    wk.counted_loop(start, end, |b, r| {
        // Parse the request line (hardened application code).
        let roff = b.mul(r, c64(REQ_BYTES));
        let req = b.gep(inp, roff, 1);
        let hash = emit_parse(b, req);
        let a = b.load(Ty::I64, hacc);
        let a2 = b.add(a, hash);
        b.store(Ty::I64, a2, hacc);
        // Serve the page (unhardened library copy — sendfile/memcpy).
        b.call_builtin(Builtin::Memcpy, vec![resp.into(), cptr(page), c64(page_bytes)], Ty::Void);
        b.call_builtin(Builtin::Heartbeat, vec![], Ty::Void);
    });
    let hv = wk.load(Ty::I64, hacc);
    let slot = wk.gep(cptr(hash_slots), tid, 8);
    wk.store(Ty::I64, hv, slot);
    wk.ret(c64(0));
    let wid = m.add_func(wk.finish());

    fork_join_main(
        &mut m,
        wid,
        |_b| {},
        move |b, _| {
            let nt = emit_thread_count(b);
            let total = b.alloca(Ty::I64, c64(1));
            b.store(Ty::I64, c64(0), total);
            b.counted_loop(c64(0), nt, |b, t| {
                let pa = b.gep(cptr(hash_slots), t, 8);
                let v = b.load(Ty::I64, pa);
                let a = b.load(Ty::I64, total);
                let a2 = b.add(a, v);
                b.store(Ty::I64, a2, total);
            });
            let tv = b.load(Ty::I64, total);
            b.call_builtin(Builtin::OutputI64, vec![tv.into()], Ty::Void);
            b.ret(c64(0));
        },
    );
    BuiltApp { module: m, input: gen_bytes(0xAC, n_req * REQ_BYTES as usize), ops: n_req as u64 }
}

/// Emit the serving-form handling of one 64-byte request line at `req`:
/// hardened parse, unhardened library page copy, the hash as the reply,
/// and a completion heartbeat (the serving runtime reads heartbeat
/// timestamps to attribute per-request latency inside batches). Shared
/// by the `serve_one` and `serve_batch` entries.
fn emit_serve_req(b: &mut FuncBuilder, page: u64, page_bytes: i64, resp_slot: u64, req: ValueId) {
    let hash = emit_parse(b, req);
    let resp = b.load(Ty::Ptr, cptr(resp_slot));
    b.call_builtin(Builtin::Memcpy, vec![resp.into(), cptr(page), c64(page_bytes)], Ty::Void);
    b.call_builtin(Builtin::OutputI64, vec![hash.into()], Ty::Void);
    b.call_builtin(Builtin::Heartbeat, vec![], Ty::Void);
}

/// Build the mini web server in *serving* form: `main` allocates the
/// resident response buffer once (its pointer parked in a global),
/// `serve_one` handles one 64-byte request from the input segment —
/// hardened parse, unhardened library page copy, hash as the reply —
/// and `serve_batch` handles a count-prefixed mini-trace of request
/// lines in one invocation (`Machine::reenter_batch` layout).
pub fn build_serve(scale: Scale) -> ServeApp {
    let page_bytes: i64 = scale.pick(16 * 1024, 32 * 1024, 64 * 1024);
    let mut m = Module::new("apache_serve");
    let page = GLOBAL_BASE + m.add_global_data(&gen_bytes(0xAB, page_bytes as usize)) as u64;
    let resp_slot = GLOBAL_BASE + m.alloc_global(8) as u64;

    let mut ib = FuncBuilder::new("main", vec![], Ty::I64);
    let resp = ib.call_builtin(Builtin::Malloc, vec![c64(page_bytes)], Ty::Ptr).unwrap();
    ib.store(Ty::Ptr, resp, cptr(resp_slot));
    ib.ret(c64(0));
    m.add_func(ib.finish());

    let mut sb = FuncBuilder::new("serve_one", vec![], Ty::I64);
    let req = sb.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    emit_serve_req(&mut sb, page, page_bytes, resp_slot, req);
    sb.ret(c64(0));
    m.add_func(sb.finish());

    let mut bb = FuncBuilder::new("serve_batch", vec![], Ty::I64);
    let inp = bb.call_builtin(Builtin::InputPtr, vec![], Ty::Ptr).unwrap();
    let count = bb.load(Ty::I64, inp);
    bb.counted_loop(c64(0), count, |b, i| {
        let off = b.mul(i, c64(REQ_BYTES));
        let rec = b.gep(inp, off, 1);
        let req = b.gep(rec, c64(8), 1);
        emit_serve_req(b, page, page_bytes, resp_slot, req);
    });
    bb.ret(c64(0));
    m.add_func(bb.finish());

    ServeApp {
        module: m,
        init_entry: "main",
        request_entry: "serve_one",
        batch_entry: "serve_batch",
        table_base: 0,
        n_keys: 0,
        request_bytes: REQ_BYTES as usize,
        key_of: parse_hash,
    }
}
