//! # elzar-avx
//!
//! Bit-accurate software model of the Intel AVX 256-bit (YMM) register file
//! and the lane operations the ELZAR transformation relies on (§II-C of the
//! paper): lane-wise arithmetic, compares producing all-ones/all-zeros
//! masks, `ptest` three-outcome flag folding, `shuffle`, `extract`,
//! `broadcast`, blends, and the §VII "future AVX" gather/scatter value
//! plumbing.
//!
//! The model also provides what real silicon will not: a precise
//! single-bit fault-injection hook ([`Ymm::flip_bit`]) and majority-vote
//! helpers implementing the paper's simple and extended recovery policies
//! (§III-C step 3).
//!
//! ```
//! use elzar_avx::{LaneWidth, PtestResult, Ymm};
//!
//! // Four replicas of 7, as ELZAR would hold an i64.
//! let a = Ymm::splat(LaneWidth::B64, 4, 7);
//! let b = Ymm::splat(LaneWidth::B64, 4, 35);
//! let sum = a.map2(&b, LaneWidth::B64, 4, |x, y| x.wrapping_add(y));
//! assert_eq!(sum.lane(LaneWidth::B64, 0), 42);
//!
//! // The Figure-8 check: shuffle-rotate, xor, ptest.
//! let rot = sum.rotate_lanes(LaneWidth::B64, 4);
//! let diff = sum.xor(&rot);
//! assert_eq!(diff.ptest(LaneWidth::B64, 4), PtestResult::AllFalse);
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Lane element width within a YMM register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LaneWidth {
    /// 8-bit lanes (32 per register).
    B8,
    /// 16-bit lanes (16 per register).
    B16,
    /// 32-bit lanes (8 per register).
    B32,
    /// 64-bit lanes (4 per register).
    B64,
}

impl LaneWidth {
    /// Lane width in bits.
    pub const fn bits(self) -> u32 {
        match self {
            LaneWidth::B8 => 8,
            LaneWidth::B16 => 16,
            LaneWidth::B32 => 32,
            LaneWidth::B64 => 64,
        }
    }

    /// Lane capacity of one 256-bit register at this width.
    pub fn capacity(self) -> usize {
        (256 / self.bits()) as usize
    }

    /// All-ones lane value (the AVX "true" mask lane).
    pub fn ones(self) -> u64 {
        match self {
            LaneWidth::B64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    /// Width for a lane of `bytes` storage bytes.
    ///
    /// # Panics
    /// Panics unless `bytes ∈ {1,2,4,8}`.
    pub fn from_bytes(bytes: u32) -> LaneWidth {
        match bytes {
            1 => LaneWidth::B8,
            2 => LaneWidth::B16,
            4 => LaneWidth::B32,
            8 => LaneWidth::B64,
            _ => panic!("no lane width of {bytes} bytes"),
        }
    }
}

/// The three outcomes `ptest` + `ja/je/jne` distinguish (Figure 9).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PtestResult {
    /// Every considered lane is all-zeros ("false" in every replica).
    AllFalse,
    /// Every considered lane is all-ones ("true" in every replica).
    AllTrue,
    /// Lanes disagree — under ELZAR's mask discipline this means a fault.
    Mixed,
}

impl PtestResult {
    /// Encoding used by the IR (`i8`): 0 / 1 / 2.
    pub fn code(self) -> u64 {
        match self {
            PtestResult::AllFalse => 0,
            PtestResult::AllTrue => 1,
            PtestResult::Mixed => 2,
        }
    }
}

/// A 256-bit YMM register value.
///
/// Stored little-endian as four 64-bit limbs: bit 0 of `limbs[0]` is bit 0
/// of the register.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Ymm {
    limbs: [u64; 4],
}

impl Ymm {
    /// The all-zeros register.
    pub const ZERO: Ymm = Ymm { limbs: [0; 4] };

    /// Construct from raw limbs (limb 0 = bits 0..64).
    pub fn from_limbs(limbs: [u64; 4]) -> Ymm {
        Ymm { limbs }
    }

    /// Raw limbs.
    pub fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Borrow the raw limbs without copying — the view execution-engine
    /// kernels operate on.
    pub fn limbs_ref(&self) -> &[u64; 4] {
        &self.limbs
    }

    /// Mutably borrow the raw limbs, for in-place kernel writes.
    pub fn limbs_mut(&mut self) -> &mut [u64; 4] {
        &mut self.limbs
    }

    /// Broadcast `value` (masked to the lane width) across the *whole*
    /// register — [`Ymm::splat`] with `lanes == capacity`, but computed
    /// with four limb writes instead of a per-lane loop. This is the
    /// shape every ELZAR-hardened value has, so it is the fast path the
    /// trace engine and the fault model share.
    pub fn broadcast(width: LaneWidth, value: u64) -> Ymm {
        let limb = match width {
            LaneWidth::B64 => value,
            LaneWidth::B32 => (value & 0xFFFF_FFFF).wrapping_mul(0x0000_0001_0000_0001),
            LaneWidth::B16 => (value & 0xFFFF).wrapping_mul(0x0001_0001_0001_0001),
            LaneWidth::B8 => (value & 0xFF).wrapping_mul(0x0101_0101_0101_0101),
        };
        Ymm { limbs: [limb; 4] }
    }

    /// Broadcast `value` (masked to the lane width) into the first
    /// `lanes` lanes; upper lanes stay zero. This is `vbroadcast` when
    /// `lanes` equals the capacity.
    pub fn splat(width: LaneWidth, lanes: usize, value: u64) -> Ymm {
        let mut r = Ymm::ZERO;
        for i in 0..lanes {
            r.set_lane(width, i, value);
        }
        r
    }

    /// Read lane `i` (zero-extended).
    ///
    /// # Panics
    /// Panics if `i` exceeds the lane capacity for `width`.
    pub fn lane(&self, width: LaneWidth, i: usize) -> u64 {
        assert!(i < width.capacity(), "lane {i} out of range for {width:?}");
        let bits = width.bits() as usize;
        let bit = i * bits;
        let limb = bit / 64;
        let off = bit % 64;
        let raw = self.limbs[limb] >> off;
        if bits == 64 {
            raw
        } else {
            raw & ((1u64 << bits) - 1)
        }
    }

    /// Write lane `i` (value masked to the lane width).
    pub fn set_lane(&mut self, width: LaneWidth, i: usize, value: u64) {
        assert!(i < width.capacity(), "lane {i} out of range for {width:?}");
        let bits = width.bits() as usize;
        let bit = i * bits;
        let limb = bit / 64;
        let off = bit % 64;
        if bits == 64 {
            self.limbs[limb] = value;
        } else {
            let mask = ((1u64 << bits) - 1) << off;
            self.limbs[limb] = (self.limbs[limb] & !mask) | ((value << off) & mask);
        }
    }

    /// Functional update of one lane.
    pub fn with_lane(mut self, width: LaneWidth, i: usize, value: u64) -> Ymm {
        self.set_lane(width, i, value);
        self
    }

    /// Lane-wise unary map over the first `lanes` lanes.
    pub fn map(&self, width: LaneWidth, lanes: usize, mut f: impl FnMut(u64) -> u64) -> Ymm {
        let mut r = Ymm::ZERO;
        for i in 0..lanes {
            r.set_lane(width, i, f(self.lane(width, i)));
        }
        r
    }

    /// Lane-wise binary map over the first `lanes` lanes.
    pub fn map2(
        &self,
        other: &Ymm,
        width: LaneWidth,
        lanes: usize,
        mut f: impl FnMut(u64, u64) -> u64,
    ) -> Ymm {
        let mut r = Ymm::ZERO;
        for i in 0..lanes {
            r.set_lane(width, i, f(self.lane(width, i), other.lane(width, i)));
        }
        r
    }

    /// Lane-wise compare producing an AVX mask: all-ones where `f` holds,
    /// all-zeros elsewhere (`vpcmpeq`/`vcmpps` semantics, §II-C).
    pub fn cmp_mask(
        &self,
        other: &Ymm,
        width: LaneWidth,
        lanes: usize,
        mut f: impl FnMut(u64, u64) -> bool,
    ) -> Ymm {
        let ones = width.ones();
        self.map2(other, width, lanes, |a, b| if f(a, b) { ones } else { 0 })
    }

    /// In-place lane-wise unary map over the first `lanes` lanes —
    /// [`Ymm::map`] without materializing a fresh register.
    pub fn map_assign(&mut self, width: LaneWidth, lanes: usize, mut f: impl FnMut(u64) -> u64) {
        for i in 0..lanes {
            self.set_lane(width, i, f(self.lane(width, i)));
        }
    }

    /// In-place lane-wise binary map over the first `lanes` lanes —
    /// [`Ymm::map2`] updating `self` directly.
    pub fn map2_assign(
        &mut self,
        other: &Ymm,
        width: LaneWidth,
        lanes: usize,
        mut f: impl FnMut(u64, u64) -> u64,
    ) {
        for i in 0..lanes {
            self.set_lane(width, i, f(self.lane(width, i), other.lane(width, i)));
        }
    }

    /// Whole-register xor.
    pub fn xor(&self, other: &Ymm) -> Ymm {
        let mut r = Ymm::ZERO;
        for i in 0..4 {
            r.limbs[i] = self.limbs[i] ^ other.limbs[i];
        }
        r
    }

    /// In-place whole-register xor.
    pub fn xor_assign(&mut self, other: &Ymm) {
        for i in 0..4 {
            self.limbs[i] ^= other.limbs[i];
        }
    }

    /// Lane permutation: result lane `i` = source lane `mask[i]`
    /// (`vperm`-style, one source).
    ///
    /// # Panics
    /// Panics if any mask entry exceeds capacity.
    pub fn shuffle(&self, width: LaneWidth, mask: &[u8]) -> Ymm {
        let mut r = Ymm::ZERO;
        for (i, &m) in mask.iter().enumerate() {
            r.set_lane(width, i, self.lane(width, m as usize));
        }
        r
    }

    /// Rotate the first `lanes` lanes down by one (lane `i` receives lane
    /// `i+1`, last receives lane 0) — the shuffle ELZAR's Figure-8 check
    /// uses.
    pub fn rotate_lanes(&self, width: LaneWidth, lanes: usize) -> Ymm {
        let mut r = Ymm::ZERO;
        for i in 0..lanes {
            r.set_lane(width, i, self.lane(width, (i + 1) % lanes));
        }
        r
    }

    /// `ptest` restricted to the first `lanes` lanes, with ELZAR's flag
    /// interpretation (Figure 9): all-false / all-true / mixed.
    pub fn ptest(&self, width: LaneWidth, lanes: usize) -> PtestResult {
        let ones = width.ones();
        let mut all_zero = true;
        let mut all_ones = true;
        for i in 0..lanes {
            let v = self.lane(width, i);
            if v != 0 {
                all_zero = false;
            }
            if v != ones {
                all_ones = false;
            }
        }
        if all_zero {
            PtestResult::AllFalse
        } else if all_ones {
            PtestResult::AllTrue
        } else {
            PtestResult::Mixed
        }
    }

    /// Lane-wise blend: where the mask lane is non-zero take `a`, else
    /// `b` (`vblendv` with canonical masks).
    pub fn blend(mask: &Ymm, a: &Ymm, b: &Ymm, width: LaneWidth, lanes: usize) -> Ymm {
        let mut r = Ymm::ZERO;
        for i in 0..lanes {
            let v = if mask.lane(width, i) != 0 { a.lane(width, i) } else { b.lane(width, i) };
            r.set_lane(width, i, v);
        }
        r
    }

    /// Flip a single bit (0..=255) — the SEU model's injection primitive.
    ///
    /// # Panics
    /// Panics if `bit >= 256`.
    pub fn flip_bit(mut self, bit: u32) -> Ymm {
        assert!(bit < 256, "bit index out of range");
        self.limbs[(bit / 64) as usize] ^= 1u64 << (bit % 64);
        self
    }

    /// True if the first `lanes` lanes all hold the same value.
    pub fn lanes_agree(&self, width: LaneWidth, lanes: usize) -> bool {
        let first = self.lane(width, 0);
        (1..lanes).all(|i| self.lane(width, i) == first)
    }
}

/// Result of a majority vote across replicas.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MajorityOutcome {
    /// A plurality agreed on `value`; `corrected` is true when at least
    /// one lane had to be overwritten.
    Recovered {
        /// The winning replica value.
        value: u64,
        /// Whether any lane diverged from the winner.
        corrected: bool,
    },
    /// Two groups of equal size disagree (the paper's scenario 3) — no
    /// majority exists and execution must stop.
    Tie,
}

/// Simple recovery (§III-C "Step 3", fast variant): compare the two low
/// lanes; if they agree broadcast lane 0, otherwise broadcast the highest
/// lane. Correct under the single-corrupted-lane assumption.
pub fn majority_simple(v: &Ymm, width: LaneWidth, lanes: usize) -> u64 {
    if lanes >= 2 && v.lane(width, 0) == v.lane(width, 1) {
        v.lane(width, 0)
    } else {
        v.lane(width, lanes - 1)
    }
}

/// Extended recovery (§III-C): count agreement groups across all lanes.
///
/// * one group strictly larger than every other → recovered (covers the
///   paper's scenarios 1 and 2, and any pattern leaving a plurality);
/// * equal-size leading groups (e.g. the 2+2 split) →
///   [`MajorityOutcome::Tie`]: execution must stop.
pub fn majority_extended(v: &Ymm, width: LaneWidth, lanes: usize) -> MajorityOutcome {
    // Count occurrences of each distinct lane value (lanes ≤ 32).
    let mut values: Vec<(u64, usize)> = Vec::with_capacity(lanes);
    for i in 0..lanes {
        let x = v.lane(width, i);
        match values.iter_mut().find(|(val, _)| *val == x) {
            Some((_, c)) => *c += 1,
            None => values.push((x, 1)),
        }
    }
    values.sort_by_key(|&(_, count)| std::cmp::Reverse(count));
    let (best, best_count) = values[0];
    let second_count = values.get(1).map(|&(_, c)| c).unwrap_or(0);
    if best_count == lanes {
        MajorityOutcome::Recovered { value: best, corrected: false }
    } else if best_count > second_count {
        MajorityOutcome::Recovered { value: best, corrected: true }
    } else {
        MajorityOutcome::Tie
    }
}

impl fmt::Debug for Ymm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ymm({:#018x} {:#018x} {:#018x} {:#018x})",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl fmt::Display for Ymm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

// ---------------------------------------------------------------------------
// Float lane helpers (the VM executes FP vector ops through these).
// ---------------------------------------------------------------------------

/// Interpret a 32-bit lane as `f32`.
pub fn f32_from_lane(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}

/// Store an `f32` into a 32-bit lane.
pub fn f32_to_lane(v: f32) -> u64 {
    u64::from(v.to_bits())
}

/// Interpret a 64-bit lane as `f64`.
pub fn f64_from_lane(bits: u64) -> f64 {
    f64::from_bits(bits)
}

/// Store an `f64` into a 64-bit lane.
pub fn f64_to_lane(v: f64) -> u64 {
    v.to_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_roundtrip_all_widths() {
        for w in [LaneWidth::B8, LaneWidth::B16, LaneWidth::B32, LaneWidth::B64] {
            let mut r = Ymm::ZERO;
            for i in 0..w.capacity() {
                r.set_lane(w, i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            for i in 0..w.capacity() {
                let want = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & w.ones();
                assert_eq!(r.lane(w, i), want, "width {w:?} lane {i}");
            }
        }
    }

    #[test]
    fn splat_fills_lanes() {
        let r = Ymm::splat(LaneWidth::B32, 8, 0xDEAD_BEEF);
        for i in 0..8 {
            assert_eq!(r.lane(LaneWidth::B32, i), 0xDEAD_BEEF);
        }
        assert!(r.lanes_agree(LaneWidth::B32, 8));
    }

    #[test]
    fn figure2_addition_semantics() {
        // Figure 2: r1+r2 computed in all four lanes at once.
        let r1 = Ymm::splat(LaneWidth::B64, 4, 100);
        let r2 = Ymm::splat(LaneWidth::B64, 4, 23);
        let sum = r1.map2(&r2, LaneWidth::B64, 4, |a, b| a.wrapping_add(b));
        for i in 0..4 {
            assert_eq!(sum.lane(LaneWidth::B64, i), 123);
        }
    }

    #[test]
    fn cmp_mask_is_all_ones_or_zeros() {
        let a = Ymm::splat(LaneWidth::B64, 4, 5);
        let b = Ymm::splat(LaneWidth::B64, 4, 5).with_lane(LaneWidth::B64, 2, 6);
        let m = a.cmp_mask(&b, LaneWidth::B64, 4, |x, y| x == y);
        assert_eq!(m.lane(LaneWidth::B64, 0), u64::MAX);
        assert_eq!(m.lane(LaneWidth::B64, 2), 0);
    }

    #[test]
    fn ptest_trichotomy() {
        let f = Ymm::ZERO;
        assert_eq!(f.ptest(LaneWidth::B64, 4), PtestResult::AllFalse);
        let t = Ymm::splat(LaneWidth::B64, 4, u64::MAX);
        assert_eq!(t.ptest(LaneWidth::B64, 4), PtestResult::AllTrue);
        let m = t.with_lane(LaneWidth::B64, 1, 0);
        assert_eq!(m.ptest(LaneWidth::B64, 4), PtestResult::Mixed);
        // Garbage (neither all-ones nor zero in a lane) is also Mixed.
        let g = Ymm::ZERO.with_lane(LaneWidth::B64, 0, 0b1010);
        assert_eq!(g.ptest(LaneWidth::B64, 4), PtestResult::Mixed);
    }

    #[test]
    fn figure8_check_detects_single_lane_corruption() {
        // shuffle(rot1) + xor + ptest: clean register -> AllFalse,
        // any single corrupted lane -> not AllFalse.
        let clean = Ymm::splat(LaneWidth::B64, 4, 0xABCD);
        let diff = clean.xor(&clean.rotate_lanes(LaneWidth::B64, 4));
        assert_eq!(diff.ptest(LaneWidth::B64, 4), PtestResult::AllFalse);

        for lane in 0..4 {
            for bit in [0u32, 17, 63] {
                let faulty = clean.flip_bit(lane * 64 + bit);
                let d = faulty.xor(&faulty.rotate_lanes(LaneWidth::B64, 4));
                assert_ne!(d.ptest(LaneWidth::B64, 4), PtestResult::AllFalse, "lane {lane} bit {bit}");
            }
        }
    }

    #[test]
    fn shuffle_matches_figure4() {
        let mut v = Ymm::ZERO;
        for i in 0..4 {
            v.set_lane(LaneWidth::B64, i, 10 + i as u64);
        }
        let s = v.shuffle(LaneWidth::B64, &[3, 2, 1, 0]);
        assert_eq!(s.lane(LaneWidth::B64, 0), 13);
        assert_eq!(s.lane(LaneWidth::B64, 3), 10);
    }

    #[test]
    fn blend_selects_by_mask() {
        let a = Ymm::splat(LaneWidth::B32, 8, 1);
        let b = Ymm::splat(LaneWidth::B32, 8, 2);
        let mut mask = Ymm::ZERO;
        mask.set_lane(LaneWidth::B32, 3, LaneWidth::B32.ones());
        let r = Ymm::blend(&mask, &a, &b, LaneWidth::B32, 8);
        for i in 0..8 {
            assert_eq!(r.lane(LaneWidth::B32, i), if i == 3 { 1 } else { 2 });
        }
    }

    #[test]
    fn majority_simple_matches_paper_fast_path() {
        // Low two lanes agree -> take lane 0.
        let v = Ymm::splat(LaneWidth::B64, 4, 9).with_lane(LaneWidth::B64, 3, 1);
        assert_eq!(majority_simple(&v, LaneWidth::B64, 4), 9);
        // Low lanes disagree -> the fault is among them; take the top lane.
        let v = Ymm::splat(LaneWidth::B64, 4, 9).with_lane(LaneWidth::B64, 0, 1);
        assert_eq!(majority_simple(&v, LaneWidth::B64, 4), 9);
        let v = Ymm::splat(LaneWidth::B64, 4, 9).with_lane(LaneWidth::B64, 1, 1);
        assert_eq!(majority_simple(&v, LaneWidth::B64, 4), 9);
    }

    #[test]
    fn majority_extended_three_scenarios() {
        let w = LaneWidth::B64;
        // Scenario 1: three identical, one faulty.
        let v = Ymm::splat(w, 4, 7).with_lane(w, 2, 3);
        assert_eq!(majority_extended(&v, w, 4), MajorityOutcome::Recovered { value: 7, corrected: true });
        // Scenario 2: two identical + two distinct singletons.
        let v = Ymm::splat(w, 4, 7).with_lane(w, 1, 3).with_lane(w, 2, 4);
        assert_eq!(majority_extended(&v, w, 4), MajorityOutcome::Recovered { value: 7, corrected: true });
        // Scenario 3: 2+2 split — no majority.
        let v = Ymm::splat(w, 4, 7).with_lane(w, 2, 3).with_lane(w, 3, 3);
        assert_eq!(majority_extended(&v, w, 4), MajorityOutcome::Tie);
        // Clean register: recovered without correction.
        let v = Ymm::splat(w, 4, 7);
        assert_eq!(majority_extended(&v, w, 4), MajorityOutcome::Recovered { value: 7, corrected: false });
    }

    #[test]
    fn flip_bit_flips_exactly_one_bit() {
        let v = Ymm::splat(LaneWidth::B64, 4, 0);
        for bit in [0u32, 63, 64, 128, 255] {
            let f = v.flip_bit(bit);
            let mut diff = 0;
            for i in 0..4 {
                diff += (f.limbs()[i] ^ v.limbs()[i]).count_ones();
            }
            assert_eq!(diff, 1);
            assert_eq!(f.flip_bit(bit), v, "double flip restores");
        }
    }

    #[test]
    fn broadcast_equals_full_capacity_splat() {
        for w in [LaneWidth::B8, LaneWidth::B16, LaneWidth::B32, LaneWidth::B64] {
            for v in [0u64, 1, 0xAB, 0xDEAD_BEEF, u64::MAX, 0x8000_0000_0000_0001] {
                assert_eq!(Ymm::broadcast(w, v), Ymm::splat(w, w.capacity(), v), "{w:?} {v:#x}");
            }
        }
    }

    #[test]
    fn in_place_variants_match_copying_ops() {
        let a = Ymm::from_limbs([0x0123, 0x4567, 0x89AB, 0xCDEF]);
        let b = Ymm::from_limbs([u64::MAX, 0, 0x5555_5555, 0xAAAA_AAAA]);
        let mut x = a;
        x.xor_assign(&b);
        assert_eq!(x, a.xor(&b));
        let mut y = a;
        y.map_assign(LaneWidth::B32, 8, |v| v.wrapping_mul(3));
        assert_eq!(y, a.map(LaneWidth::B32, 8, |v| v.wrapping_mul(3)));
        let mut z = a;
        z.map2_assign(&b, LaneWidth::B64, 4, u64::wrapping_add);
        assert_eq!(z, a.map2(&b, LaneWidth::B64, 4, u64::wrapping_add));
        let mut w = a;
        w.limbs_mut()[2] = 42;
        assert_eq!(w.limbs_ref()[2], 42);
        assert_eq!(w.lane(LaneWidth::B64, 2), 42);
    }

    #[test]
    fn float_lane_roundtrip() {
        assert_eq!(f32_from_lane(f32_to_lane(1.5)), 1.5);
        assert_eq!(f64_from_lane(f64_to_lane(-2.25)), -2.25);
        let v = Ymm::splat(LaneWidth::B64, 4, f64_to_lane(0.5));
        let sq = v.map(LaneWidth::B64, 4, |b| f64_to_lane(f64_from_lane(b) * 2.0));
        assert_eq!(f64_from_lane(sq.lane(LaneWidth::B64, 0)), 1.0);
    }
}
