//! Property-based tests for the YMM model: lane operations must agree with
//! a scalar reference, the Figure-8/9 check sequences must detect every
//! single-lane corruption, and majority voting must mask any single fault.
//!
//! Cases are drawn from the repo's deterministic PRNG (`elzar_rng`):
//! each test sweeps every lane width crossed with pseudo-random values
//! and *every* bit position, which is stronger than sampled bits.

use elzar_avx::{majority_extended, majority_simple, LaneWidth, MajorityOutcome, PtestResult, Ymm};
use elzar_rng::DetRng;

const WIDTHS: [LaneWidth; 4] = [LaneWidth::B8, LaneWidth::B16, LaneWidth::B32, LaneWidth::B64];
const CASES: usize = 32;

#[test]
fn map2_add_matches_scalar_reference() {
    let mut rng = DetRng::seed_from_u64(0xA1);
    for w in WIDTHS {
        let lanes = w.capacity();
        for _ in 0..CASES {
            let (a0, b0) = (rng.next_u64(), rng.next_u64());
            let a = Ymm::splat(w, lanes, a0);
            let b = Ymm::splat(w, lanes, b0);
            let sum = a.map2(&b, w, lanes, |x, y| x.wrapping_add(y));
            let want = a0.wrapping_add(b0) & w.ones();
            for i in 0..lanes {
                assert_eq!(sum.lane(w, i) & w.ones(), want, "{w:?} lane {i}");
            }
        }
    }
}

#[test]
fn lane_set_get_roundtrip() {
    let mut rng = DetRng::seed_from_u64(0xA2);
    for w in WIDTHS {
        let lanes = w.capacity();
        for _ in 0..CASES {
            let i = rng.below(lanes as u64) as usize;
            let v = rng.next_u64();
            let r = Ymm::ZERO.with_lane(w, i, v);
            assert_eq!(r.lane(w, i), v & w.ones());
            // All other lanes untouched.
            for j in 0..lanes {
                if j != i {
                    assert_eq!(r.lane(w, j), 0, "{w:?} lane {j} dirtied");
                }
            }
        }
    }
}

#[test]
fn shuffle_then_inverse_is_identity() {
    let mut rng = DetRng::seed_from_u64(0xA3);
    for w in WIDTHS {
        let lanes = w.capacity();
        for _ in 0..CASES {
            let seed = rng.next_u64();
            let mut v = Ymm::ZERO;
            for i in 0..lanes {
                v.set_lane(w, i, seed.wrapping_mul(i as u64 + 1));
            }
            // rotate down then rotate up.
            let down: Vec<u8> = (0..lanes).map(|i| ((i + 1) % lanes) as u8).collect();
            let up: Vec<u8> = (0..lanes).map(|i| ((i + lanes - 1) % lanes) as u8).collect();
            let r = v.shuffle(w, &down).shuffle(w, &up);
            assert_eq!(r, v, "{w:?}");
        }
    }
}

/// The exact check ELZAR inserts before synchronization instructions
/// (Figure 8): it must accept every clean register and reject every
/// register with a single flipped bit.
#[test]
fn figure8_check_soundness_and_completeness() {
    let mut rng = DetRng::seed_from_u64(0xA4);
    for w in WIDTHS {
        let lanes = w.capacity();
        for _ in 0..CASES {
            let value = rng.next_u64();
            let clean = Ymm::splat(w, lanes, value);
            let check = |r: &Ymm| r.xor(&r.rotate_lanes(w, lanes)).ptest(w, lanes);
            assert_eq!(check(&clean), PtestResult::AllFalse, "{w:?} clean {value:#x}");
            for bit in 0..256 {
                let faulty = clean.flip_bit(bit);
                assert_ne!(check(&faulty), PtestResult::AllFalse, "{w:?} bit {bit} undetected");
            }
        }
    }
}

/// Branch checks (Figure 9): a canonical mask (all lanes agree, each
/// all-ones or all-zeros) never reads as Mixed; a single bit flip in
/// the mask always does.
#[test]
fn figure9_branch_check() {
    for w in WIDTHS {
        let lanes = w.capacity();
        for taken in [false, true] {
            let mask = if taken { Ymm::splat(w, lanes, w.ones()) } else { Ymm::ZERO };
            let want = if taken { PtestResult::AllTrue } else { PtestResult::AllFalse };
            assert_eq!(mask.ptest(w, lanes), want, "{w:?} taken={taken}");
            for bit in 0..256 {
                assert_eq!(mask.flip_bit(bit).ptest(w, lanes), PtestResult::Mixed, "{w:?} bit {bit}");
            }
        }
    }
}

/// TMR guarantee: any single bit flip is outvoted by the remaining
/// replicas under both recovery policies.
#[test]
fn single_fault_always_outvoted() {
    let mut rng = DetRng::seed_from_u64(0xA5);
    for w in WIDTHS {
        let lanes = w.capacity();
        for _ in 0..CASES {
            let value = rng.next_u64();
            let clean = Ymm::splat(w, lanes, value);
            let expected = value & w.ones();
            for bit in 0..256 {
                let faulty = clean.flip_bit(bit);
                assert_eq!(majority_simple(&faulty, w, lanes), expected, "{w:?} bit {bit}");
                match majority_extended(&faulty, w, lanes) {
                    MajorityOutcome::Recovered { value: v, .. } => assert_eq!(v, expected),
                    MajorityOutcome::Tie => panic!("{w:?} bit {bit}: single fault must never tie"),
                }
            }
        }
    }
}

/// Two independent bit flips in *different* lanes are still recovered
/// by the extended policy when at least two lanes stay clean
/// (§III-A: "four copies of data can tolerate two independent SEUs").
#[test]
fn extended_policy_tolerates_two_lane_faults() {
    let mut rng = DetRng::seed_from_u64(0xA6);
    let w = LaneWidth::B64;
    for _ in 0..CASES {
        let value = rng.next_u64();
        for b1 in (0..64).step_by(7) {
            for b2 in (0..64).step_by(5) {
                let faulty = Ymm::splat(w, 4, value)
                    .flip_bit(b1) // lane 0
                    .flip_bit(64 + b2); // lane 1
                match majority_extended(&faulty, w, 4) {
                    MajorityOutcome::Recovered { value: v, corrected } => {
                        assert_eq!(v, value, "bits ({b1}, {b2})");
                        assert!(corrected);
                    }
                    MajorityOutcome::Tie => {
                        // A tie can only occur when the two faults landed on
                        // the same bit position, making the two faulty lanes
                        // agree.
                        assert_eq!(b1, b2, "unexpected tie on bits ({b1}, {b2})");
                    }
                }
            }
        }
    }
}

#[test]
fn blend_with_true_mask_is_first_arg() {
    let mut rng = DetRng::seed_from_u64(0xA7);
    for w in WIDTHS {
        let lanes = w.capacity();
        for _ in 0..CASES {
            let (a0, b0) = (rng.next_u64(), rng.next_u64());
            let a = Ymm::splat(w, lanes, a0);
            let b = Ymm::splat(w, lanes, b0);
            let t = Ymm::splat(w, lanes, w.ones());
            assert_eq!(Ymm::blend(&t, &a, &b, w, lanes), a, "{w:?}");
            assert_eq!(Ymm::blend(&Ymm::ZERO, &a, &b, w, lanes), b, "{w:?}");
        }
    }
}
