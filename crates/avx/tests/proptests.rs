//! Property-based tests for the YMM model: lane operations must agree with
//! a scalar reference, the Figure-8/9 check sequences must detect every
//! single-lane corruption, and majority voting must mask any single fault.

use elzar_avx::{majority_extended, majority_simple, LaneWidth, MajorityOutcome, PtestResult, Ymm};
use proptest::prelude::*;

fn widths() -> impl Strategy<Value = LaneWidth> {
    prop_oneof![
        Just(LaneWidth::B8),
        Just(LaneWidth::B16),
        Just(LaneWidth::B32),
        Just(LaneWidth::B64),
    ]
}

proptest! {
    #[test]
    fn map2_add_matches_scalar_reference(w in widths(), a0: u64, b0: u64) {
        let lanes = w.capacity();
        let a = Ymm::splat(w, lanes, a0);
        let b = Ymm::splat(w, lanes, b0);
        let sum = a.map2(&b, w, lanes, |x, y| x.wrapping_add(y));
        let want = a0.wrapping_add(b0) & w.ones();
        for i in 0..lanes {
            prop_assert_eq!(sum.lane(w, i) & w.ones(), want);
        }
    }

    #[test]
    fn lane_set_get_roundtrip(w in widths(), i in 0usize..32, v: u64) {
        let lanes = w.capacity();
        let i = i % lanes;
        let r = Ymm::ZERO.with_lane(w, i, v);
        prop_assert_eq!(r.lane(w, i), v & w.ones());
        // All other lanes untouched.
        for j in 0..lanes {
            if j != i {
                prop_assert_eq!(r.lane(w, j), 0);
            }
        }
    }

    #[test]
    fn shuffle_then_inverse_is_identity(w in widths(), seed: u64) {
        let lanes = w.capacity();
        let mut v = Ymm::ZERO;
        for i in 0..lanes {
            v.set_lane(w, i, seed.wrapping_mul(i as u64 + 1));
        }
        // rotate down then rotate up.
        let down: Vec<u8> = (0..lanes).map(|i| ((i + 1) % lanes) as u8).collect();
        let up: Vec<u8> = (0..lanes).map(|i| ((i + lanes - 1) % lanes) as u8).collect();
        let r = v.shuffle(w, &down).shuffle(w, &up);
        prop_assert_eq!(r, v);
    }

    /// The exact check ELZAR inserts before synchronization instructions
    /// (Figure 8): it must accept every clean register and reject every
    /// register with a single flipped bit.
    #[test]
    fn figure8_check_soundness_and_completeness(w in widths(), value: u64, bit in 0u32..256) {
        let lanes = w.capacity();
        let clean = Ymm::splat(w, lanes, value);
        let check = |r: &Ymm| r.xor(&r.rotate_lanes(w, lanes)).ptest(w, lanes);
        prop_assert_eq!(check(&clean), PtestResult::AllFalse);
        let faulty = clean.flip_bit(bit);
        prop_assert_ne!(check(&faulty), PtestResult::AllFalse);
    }

    /// Branch checks (Figure 9): a canonical mask (all lanes agree, each
    /// all-ones or all-zeros) never reads as Mixed; a single bit flip in
    /// the mask always does.
    #[test]
    fn figure9_branch_check(w in widths(), taken: bool, bit in 0u32..256) {
        let lanes = w.capacity();
        let mask = if taken { Ymm::splat(w, lanes, w.ones()) } else { Ymm::ZERO };
        let want = if taken { PtestResult::AllTrue } else { PtestResult::AllFalse };
        prop_assert_eq!(mask.ptest(w, lanes), want);
        prop_assert_eq!(mask.flip_bit(bit).ptest(w, lanes), PtestResult::Mixed);
    }

    /// TMR guarantee: any single bit flip is outvoted by the remaining
    /// replicas under both recovery policies.
    #[test]
    fn single_fault_always_outvoted(w in widths(), value: u64, bit in 0u32..256) {
        let lanes = w.capacity();
        let clean = Ymm::splat(w, lanes, value);
        let faulty = clean.flip_bit(bit);
        let expected = value & w.ones();
        prop_assert_eq!(majority_simple(&faulty, w, lanes), expected);
        match majority_extended(&faulty, w, lanes) {
            MajorityOutcome::Recovered { value: v, .. } => prop_assert_eq!(v, expected),
            MajorityOutcome::Tie => prop_assert!(false, "single fault must never tie"),
        }
    }

    /// Two independent bit flips in *different* lanes are still recovered
    /// by the extended policy when at least two lanes stay clean
    /// (§III-A: "four copies of data can tolerate two independent SEUs").
    #[test]
    fn extended_policy_tolerates_two_lane_faults(value: u64, b1 in 0u32..64, b2 in 0u32..64) {
        let w = LaneWidth::B64;
        let faulty = Ymm::splat(w, 4, value)
            .flip_bit(b1) // lane 0
            .flip_bit(64 + b2); // lane 1
        match majority_extended(&faulty, w, 4) {
            MajorityOutcome::Recovered { value: v, corrected } => {
                prop_assert_eq!(v, value);
                prop_assert!(corrected);
            }
            MajorityOutcome::Tie => {
                // A tie can only occur when the two faults landed on the
                // same bit position, making the two faulty lanes agree.
                prop_assert_eq!(b1, b2);
            }
        }
    }

    #[test]
    fn blend_with_true_mask_is_first_arg(w in widths(), a0: u64, b0: u64) {
        let lanes = w.capacity();
        let a = Ymm::splat(w, lanes, a0);
        let b = Ymm::splat(w, lanes, b0);
        let t = Ymm::splat(w, lanes, w.ones());
        prop_assert_eq!(Ymm::blend(&t, &a, &b, w, lanes), a);
        prop_assert_eq!(Ymm::blend(&Ymm::ZERO, &a, &b, w, lanes), b);
    }
}
