//! # elzar-rng
//!
//! A tiny, dependency-free, fully deterministic PRNG for the ELZAR
//! reproduction: splitmix64 seeding into xoshiro256** (Blackman &
//! Vigna). Fault-injection campaigns, property-style tests and the
//! perf probes all draw from this generator so that every result in
//! the repository is reproducible from a single `u64` seed — on any
//! host, at any worker-thread count.
//!
//! ```
//! use elzar_rng::DetRng;
//!
//! let mut a = DetRng::seed_from_u64(42);
//! let mut b = DetRng::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let x = a.range_inclusive(1, 6); // die roll
//! assert!((1..=6).contains(&x));
//! ```

#![warn(missing_docs)]

/// splitmix64 step — used for seeding and as a cheap stateless mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Seed via splitmix64, as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> DetRng {
        let mut sm = seed;
        let s = [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        DetRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Next 32-bit output (upper half — the stronger bits).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift reduction without the rejection
    /// loop: the bias is < 2^-32 for the small bounds used here, and
    /// consuming exactly one stream value per call keeps the stream
    /// position independent of the bound.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `bool`.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = DetRng::seed_from_u64(7);
        let mut b = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = DetRng::seed_from_u64(99);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit in 1000 draws");
    }

    #[test]
    fn range_inclusive_hits_bounds() {
        let mut r = DetRng::seed_from_u64(5);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = r.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = DetRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
