//! Engine differential suite: every execution engine must be an exact
//! drop-in for the reference interpreter.
//!
//! The trace engine (scalar and SIMD kernel tables alike) replays the
//! reference retire sequence with pre-resolved costs, so *everything*
//! observable — outcomes, output bytes, cycle counts, perf counters,
//! eligible-instruction totals, heartbeat timestamps, fault-campaign
//! classifications, serving-pipeline digests — must be bit-identical.
//! These tests pin that equivalence over the full benchmark matrix.

use elzar_suite::elzar::{Artifact, Mode};
use elzar_suite::elzar_apps::{App, AppParams, YcsbWorkload};
use elzar_suite::elzar_fault::CampaignConfig;
use elzar_suite::elzar_serve::{ServeConfig, Service};
use elzar_suite::elzar_vm::{EngineKind, MachineConfig, RunResult};
use elzar_suite::elzar_workloads::{all_workloads, by_name, Scale};

/// Engines measured against the `Reference` baseline.
const ENGINES: [EngineKind; 3] = [EngineKind::Trace, EngineKind::TraceScalar, EngineKind::TraceSimd];

fn cfg(engine: EngineKind) -> MachineConfig {
    MachineConfig { step_limit: 5_000_000_000, threads: 2, engine, ..MachineConfig::default() }
}

/// Every observable of a run, compared field by field so a divergence
/// names what broke (timing vs architectural state vs events).
fn assert_identical(what: &str, engine: EngineKind, r: &RunResult, base: &RunResult) {
    assert_eq!(r.outcome, base.outcome, "{what}/{engine:?}: outcome");
    assert_eq!(r.output, base.output, "{what}/{engine:?}: output bytes");
    assert_eq!(r.cycles, base.cycles, "{what}/{engine:?}: wall-clock cycles");
    assert_eq!(r.steps, base.steps, "{what}/{engine:?}: retired instructions");
    assert_eq!(r.eligible, base.eligible, "{what}/{engine:?}: eligible count");
    assert_eq!(r.counters, base.counters, "{what}/{engine:?}: perf counters");
    assert_eq!(r.thread_cycles, base.thread_cycles, "{what}/{engine:?}: per-thread clocks");
    assert_eq!(r.heartbeats, base.heartbeats, "{what}/{engine:?}: heartbeat count");
    assert_eq!(r.heartbeat_cycles, base.heartbeat_cycles, "{what}/{engine:?}: heartbeat cycles");
}

/// All 14 benchmarks, native and hardened, under every engine.
#[test]
fn workloads_bit_identical_across_engines() {
    for w in all_workloads() {
        let built = w.build(Scale::Tiny);
        for mode in [Mode::NativeNoSimd, Mode::elzar_default()] {
            let artifact = Artifact::build(&built.module, &mode);
            let base = artifact.run(&built.input, cfg(EngineKind::Reference));
            for engine in ENGINES {
                let r = artifact.run(&built.input, cfg(engine));
                assert_identical(w.name(), engine, &r, &base);
            }
        }
    }
}

/// The three case-study apps (KV store, web server, SQLite-like DB).
#[test]
fn apps_bit_identical_across_engines() {
    let p = AppParams::new(Scale::Tiny, YcsbWorkload::A);
    for app in App::all() {
        let built = app.build(&p);
        for mode in [Mode::NativeNoSimd, Mode::elzar_default()] {
            let artifact = Artifact::build(&built.module, &mode);
            let base = artifact.run(&built.input, cfg(EngineKind::Reference));
            for engine in ENGINES {
                let r = artifact.run(&built.input, cfg(engine));
                assert_identical(app.name(), engine, &r, &base);
            }
        }
    }
}

/// A seeded fault-injection campaign classifies every run identically
/// regardless of engine: the injection points are sampled from the
/// golden run's eligible count (engine-invariant) and each faulty run's
/// outcome must match the reference executor's bit for bit.
#[test]
fn fault_campaign_is_engine_invariant() {
    let built = by_name("linear_regression").unwrap().build(Scale::Tiny);
    let artifact = Artifact::build(&built.module, &Mode::elzar_default());
    let campaign = |engine: EngineKind| {
        artifact.campaign(
            &built.input,
            &CampaignConfig { runs: 40, seed: 11, machine: cfg(engine), ..Default::default() },
        )
    };
    let base = campaign(EngineKind::Reference);
    assert_eq!(base.counts.iter().sum::<u64>(), 40);
    for engine in ENGINES {
        let r = campaign(engine);
        assert_eq!(r.counts, base.counts, "{engine:?}: Table-I outcome counts");
    }
}

/// A crash-storm serving run (aggressive online fault rate, restarts,
/// snapshot recovery) is engine-invariant down to the final KV table
/// digest and the latency distribution.
#[test]
fn serve_crash_storm_is_engine_invariant() {
    let app = Service::KvA.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let serve = |engine: EngineKind| {
        let cfg = ServeConfig {
            shards: 2,
            requests: 80,
            mean_gap_cycles: 500,
            fault_rate_ppm: 200_000,
            machine: MachineConfig { engine, ..ServeConfig::default().machine },
            ..Default::default()
        };
        artifact.serve(Service::KvA, &app, &cfg)
    };
    let base = serve(EngineKind::Reference);
    assert!(base.injected > 0, "the storm must actually inject faults");
    for engine in ENGINES {
        let r = serve(engine);
        assert_eq!(r.served, base.served, "{engine:?}: served");
        assert_eq!(r.rejected, base.rejected, "{engine:?}: rejected");
        assert_eq!(r.injected, base.injected, "{engine:?}: injected");
        assert_eq!(r.outcomes, base.outcomes, "{engine:?}: Table-I outcomes");
        assert_eq!(r.restarts, base.restarts, "{engine:?}: restarts");
        assert_eq!(r.table_digest, base.table_digest, "{engine:?}: KV table digest");
        for q in [0.5, 0.99] {
            assert_eq!(
                r.quantile_cycles(q),
                base.quantile_cycles(q),
                "{engine:?}: p{} latency",
                (q * 100.0) as u32
            );
        }
    }
}
