//! Cross-crate integration tests: full pipeline slices of each paper
//! experiment (transform → lower → execute → measure / inject).

use elzar_suite::elzar::{build, execute, normalized_runtime, Mode};
use elzar_suite::elzar_apps::{throughput, App, AppParams, YcsbWorkload};
use elzar_suite::elzar_fault::{run_campaign, CampaignConfig, OutcomeClass};
use elzar_suite::elzar_vm::{MachineConfig, RunOutcome};
use elzar_suite::elzar_workloads::{all_workloads, by_name, Params, Scale};

fn cfg() -> MachineConfig {
    MachineConfig { step_limit: 5_000_000_000, ..MachineConfig::default() }
}

/// A slice of Figure 11: the overhead ordering that defines the paper's
/// headline result must hold on representative benchmarks.
#[test]
fn figure11_slice_overhead_ordering() {
    // blackscholes (FP-heavy) must be among ELZAR's cheapest; smatch
    // (byte-store-heavy) among its most expensive.
    let mut overheads = std::collections::HashMap::new();
    for name in ["blackscholes", "string_match", "matrix_multiply"] {
        let w = by_name(name).unwrap();
        let built = w.build(&Params::new(2, Scale::Tiny));
        let native = execute(&built.module, &Mode::Native, &built.input, cfg());
        let elz = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
        assert_eq!(native.output, elz.output, "{name}");
        overheads.insert(name, normalized_runtime(&elz, &native));
    }
    assert!(
        overheads["blackscholes"] < overheads["string_match"] / 3.0,
        "blackscholes {:.1}x should be far below smatch {:.1}x",
        overheads["blackscholes"],
        overheads["string_match"]
    );
    assert!(overheads["blackscholes"] < 3.0, "blackscholes {:.2}x", overheads["blackscholes"]);
}

/// A slice of Figure 12: removing checks must monotonically reduce cost.
#[test]
fn figure12_slice_checks_monotone() {
    use elzar_suite::elzar::{CheckConfig, Config};
    let w = by_name("word_count").unwrap();
    let built = w.build(&Params::new(1, Scale::Tiny));
    let native = execute(&built.module, &Mode::Native, &built.input, cfg());
    let all = execute(&built.module, &Mode::Elzar(Config::default()), &built.input, cfg());
    let none = execute(
        &built.module,
        &Mode::Elzar(Config { checks: CheckConfig::none(), ..Config::default() }),
        &built.input,
        cfg(),
    );
    let o_all = normalized_runtime(&all, &native);
    let o_none = normalized_runtime(&none, &native);
    assert!(o_none < o_all, "checks must cost: {o_none:.2} !< {o_all:.2}");
    assert!(o_none > 1.3, "even check-free ELZAR costs wrappers: {o_none:.2}");
}

/// A slice of Figure 13: ELZAR improves the correct-rate on a real
/// benchmark under fault injection.
#[test]
fn figure13_slice_reliability_improves() {
    let w = by_name("linear_regression").unwrap();
    let built = w.build(&Params::new(2, Scale::Tiny));
    let campaign = |mode: &Mode| {
        let prog = build(&built.module, mode);
        run_campaign(
            &prog,
            &built.input,
            &CampaignConfig { runs: 60, seed: 3, machine: cfg(), ..Default::default() },
        )
    };
    let native = campaign(&Mode::NativeNoSimd);
    let elzar = campaign(&Mode::elzar_default());
    assert!(
        elzar.class_rate(OutcomeClass::Corrupted) <= native.class_rate(OutcomeClass::Corrupted),
        "ELZAR corrupted {:.2} vs native {:.2}",
        elzar.class_rate(OutcomeClass::Corrupted),
        native.class_rate(OutcomeClass::Corrupted)
    );
    assert!(
        elzar.class_rate(OutcomeClass::Correct) > native.class_rate(OutcomeClass::Correct),
        "ELZAR correct {:.2} vs native {:.2}",
        elzar.class_rate(OutcomeClass::Correct),
        native.class_rate(OutcomeClass::Correct)
    );
}

/// A slice of Figure 14: ELZAR is competitive with SWIFT-R on FP-heavy
/// code (the paper reports outright wins there) and loses decisively on
/// memory-heavy code — the crossover that frames the paper's conclusion.
#[test]
fn figure14_slice_crossover() {
    let run_pair = |name: &str| {
        let w = by_name(name).unwrap();
        let built = w.build(&Params::new(2, Scale::Tiny));
        let native = execute(&built.module, &Mode::Native, &built.input, cfg());
        let sw = execute(&built.module, &Mode::SwiftR, &built.input, cfg());
        let el = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
        assert_eq!(sw.output, el.output, "{name}");
        (normalized_runtime(&el, &native), normalized_runtime(&sw, &native))
    };
    // FP-heavy: within ~15% of SWIFT-R (paper: ELZAR wins by 34%; our
    // model keeps a small residual ptest/branch tax — see EXPERIMENTS.md).
    let (el_black, sw_black) = run_pair("blackscholes");
    assert!(
        el_black < sw_black * 1.15,
        "blackscholes: ELZAR {el_black:.2}x must be competitive with SWIFT-R {sw_black:.2}x"
    );
    // Memory-heavy: SWIFT-R must win by a wide margin (paper: +170%).
    let (el_sm, sw_sm) = run_pair("string_match");
    assert!(el_sm > sw_sm * 1.5, "smatch: SWIFT-R {sw_sm:.2}x must beat ELZAR {el_sm:.2}x decisively");
}

/// A slice of Figure 15: all three case studies keep their results under
/// hardening and SQLite pays the most.
#[test]
fn figure15_slice_case_studies() {
    let p = AppParams::new(2, Scale::Tiny, YcsbWorkload::A);
    let mut retain = std::collections::HashMap::new();
    for app in App::all() {
        let built = app.build(&p);
        let native = execute(&built.module, &Mode::Native, &built.input, cfg());
        let elz = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
        assert!(matches!(native.outcome, RunOutcome::Exited(_)), "{}", app.name());
        assert_eq!(native.output, elz.output, "{}", app.name());
        let tn = throughput(built.ops, native.cycles);
        let te = throughput(built.ops, elz.cycles);
        retain.insert(app.name(), te / tn);
    }
    assert!(retain["sqlite3"] < retain["apache"], "{retain:?}");
}

/// Figure 17's punchline: future-AVX ELZAR lands well under plain ELZAR
/// on every benchmark.
#[test]
fn figure17_slice_future_avx_wins_everywhere() {
    for w in all_workloads().into_iter().take(5) {
        let built = w.build(&Params::new(1, Scale::Tiny));
        let native = execute(&built.module, &Mode::Native, &built.input, cfg());
        let elz = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
        let fut = execute(&built.module, &Mode::elzar_future_avx(), &built.input, cfg());
        assert_eq!(elz.output, fut.output, "{}", w.name());
        let oe = normalized_runtime(&elz, &native);
        let of = normalized_runtime(&fut, &native);
        assert!(of < oe, "{}: future {of:.2}x !< elzar {oe:.2}x", w.name());
    }
}

/// Cross-crate determinism: an entire workload pipeline re-run bit-equal.
#[test]
fn whole_pipeline_is_deterministic() {
    let w = by_name("dedup").unwrap();
    let built = w.build(&Params::new(2, Scale::Tiny));
    let a = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
    let b = execute(&built.module, &Mode::elzar_default(), &built.input, cfg());
    assert_eq!(a.output, b.output);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters.instrs, b.counters.instrs);
}

/// Serving mode end-to-end: a sharded resident-VM run serves the whole
/// stream, scales with shards, and accounts online faults coherently.
#[test]
fn serving_mode_scales_and_accounts_faults() {
    use elzar_suite::elzar_serve::{serve, ServeConfig, Service};
    let mk = |shards: u32| ServeConfig {
        shards,
        requests: 120,
        mean_gap_cycles: 200, // saturating: the queue is the bottleneck
        fault_rate_ppm: 100_000,
        ..Default::default()
    };
    let one = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &mk(1));
    let four = serve(Service::KvA, &Mode::elzar_default(), Scale::Tiny, &mk(4));
    assert_eq!(one.served + one.rejected, 120);
    assert_eq!(one.injected, four.injected);
    assert_eq!(one.outcomes, four.outcomes);
    assert_eq!(one.table_digest, four.table_digest);
    assert!(
        four.throughput_rps() > one.throughput_rps() * 1.5,
        "sharding must raise saturated throughput: {:.0} -> {:.0}",
        one.throughput_rps(),
        four.throughput_rps()
    );
    assert!(four.quantile_cycles(0.5) <= one.quantile_cycles(0.5));
}
