//! Cross-crate integration tests: full pipeline slices of each paper
//! experiment (transform → lower → execute → measure / inject), all
//! flowing through the artifact-centric API — build once per
//! `(workload, mode)`, run/campaign/serve on the shared artifact.

use elzar_suite::elzar::{normalized_runtime, Artifact, ArtifactSet, Mode};
use elzar_suite::elzar_apps::{throughput, App, AppParams, YcsbWorkload};
use elzar_suite::elzar_fault::{CampaignConfig, OutcomeClass};
use elzar_suite::elzar_vm::{MachineConfig, RunOutcome, RunResult};
use elzar_suite::elzar_workloads::{all_workloads, by_name, BuiltWorkload, Scale};

fn cfg(threads: u32) -> MachineConfig {
    MachineConfig { step_limit: 5_000_000_000, threads, ..MachineConfig::default() }
}

fn run(set: &ArtifactSet, built: &BuiltWorkload, name: &str, mode: &Mode, threads: u32) -> RunResult {
    set.get_or_build(name, mode, || built.module.clone()).run(&built.input, cfg(threads))
}

/// A slice of Figure 11: the overhead ordering that defines the paper's
/// headline result must hold on representative benchmarks.
#[test]
fn figure11_slice_overhead_ordering() {
    // blackscholes (FP-heavy) must be among ELZAR's cheapest; smatch
    // (byte-store-heavy) among its most expensive.
    let set = ArtifactSet::new();
    let mut overheads = std::collections::HashMap::new();
    for name in ["blackscholes", "string_match", "matrix_multiply"] {
        let built = by_name(name).unwrap().build(Scale::Tiny);
        let native = run(&set, &built, name, &Mode::Native, 2);
        let elz = run(&set, &built, name, &Mode::elzar_default(), 2);
        assert_eq!(native.output, elz.output, "{name}");
        overheads.insert(name, normalized_runtime(&elz, &native));
    }
    assert!(
        overheads["blackscholes"] < overheads["string_match"] / 3.0,
        "blackscholes {:.1}x should be far below smatch {:.1}x",
        overheads["blackscholes"],
        overheads["string_match"]
    );
    assert!(overheads["blackscholes"] < 3.0, "blackscholes {:.2}x", overheads["blackscholes"]);
}

/// A slice of Figure 12: removing checks must monotonically reduce cost.
#[test]
fn figure12_slice_checks_monotone() {
    use elzar_suite::elzar::{CheckConfig, Config};
    let set = ArtifactSet::new();
    let built = by_name("word_count").unwrap().build(Scale::Tiny);
    let native = run(&set, &built, "wc", &Mode::Native, 1);
    let all = run(&set, &built, "wc", &Mode::Elzar(Config::default()), 1);
    let none_mode = Mode::Elzar(Config { checks: CheckConfig::none(), ..Config::default() });
    let none = run(&set, &built, "wc", &none_mode, 1);
    let o_all = normalized_runtime(&all, &native);
    let o_none = normalized_runtime(&none, &native);
    assert!(o_none < o_all, "checks must cost: {o_none:.2} !< {o_all:.2}");
    assert!(o_none > 1.3, "even check-free ELZAR costs wrappers: {o_none:.2}");
}

/// A slice of Figure 13: ELZAR improves the correct-rate on a real
/// benchmark under fault injection — campaigns ride the artifact's
/// cached golden run.
#[test]
fn figure13_slice_reliability_improves() {
    let built = by_name("linear_regression").unwrap().build(Scale::Tiny);
    let campaign = |mode: &Mode| {
        let artifact = Artifact::build(&built.module, mode);
        let r = artifact.campaign(
            &built.input,
            &CampaignConfig { runs: 60, seed: 3, machine: cfg(2), ..Default::default() },
        );
        assert_eq!(artifact.golden_cache_len(), 1, "campaign populated the golden cache");
        r
    };
    let native = campaign(&Mode::NativeNoSimd);
    let elzar = campaign(&Mode::elzar_default());
    assert!(
        elzar.class_rate(OutcomeClass::Corrupted) <= native.class_rate(OutcomeClass::Corrupted),
        "ELZAR corrupted {:.2} vs native {:.2}",
        elzar.class_rate(OutcomeClass::Corrupted),
        native.class_rate(OutcomeClass::Corrupted)
    );
    assert!(
        elzar.class_rate(OutcomeClass::Correct) > native.class_rate(OutcomeClass::Correct),
        "ELZAR correct {:.2} vs native {:.2}",
        elzar.class_rate(OutcomeClass::Correct),
        native.class_rate(OutcomeClass::Correct)
    );
}

/// A slice of Figure 14: ELZAR is competitive with SWIFT-R on FP-heavy
/// code (the paper reports outright wins there) and loses decisively on
/// memory-heavy code — the crossover that frames the paper's conclusion.
#[test]
fn figure14_slice_crossover() {
    let set = ArtifactSet::new();
    let run_pair = |name: &str| {
        let built = by_name(name).unwrap().build(Scale::Tiny);
        let native = run(&set, &built, name, &Mode::Native, 2);
        let sw = run(&set, &built, name, &Mode::SwiftR, 2);
        let el = run(&set, &built, name, &Mode::elzar_default(), 2);
        assert_eq!(sw.output, el.output, "{name}");
        (normalized_runtime(&el, &native), normalized_runtime(&sw, &native))
    };
    // FP-heavy: within ~15% of SWIFT-R (paper: ELZAR wins by 34%; our
    // model keeps a small residual ptest/branch tax — see EXPERIMENTS.md).
    let (el_black, sw_black) = run_pair("blackscholes");
    assert!(
        el_black < sw_black * 1.15,
        "blackscholes: ELZAR {el_black:.2}x must be competitive with SWIFT-R {sw_black:.2}x"
    );
    // Memory-heavy: SWIFT-R must win by a wide margin (paper: +170%).
    let (el_sm, sw_sm) = run_pair("string_match");
    assert!(el_sm > sw_sm * 1.5, "smatch: SWIFT-R {sw_sm:.2}x must beat ELZAR {el_sm:.2}x decisively");
}

/// A slice of Figure 15: all three case studies keep their results under
/// hardening and SQLite pays the most. One artifact per (app, mode).
#[test]
fn figure15_slice_case_studies() {
    let p = AppParams::new(Scale::Tiny, YcsbWorkload::A);
    let mut retain = std::collections::HashMap::new();
    for app in App::all() {
        let built = app.build(&p);
        let native = Artifact::build(&built.module, &Mode::Native).run(&built.input, cfg(2));
        let elz = Artifact::build(&built.module, &Mode::elzar_default()).run(&built.input, cfg(2));
        assert!(matches!(native.outcome, RunOutcome::Exited(_)), "{}", app.name());
        assert_eq!(native.output, elz.output, "{}", app.name());
        let tn = throughput(built.ops, native.cycles);
        let te = throughput(built.ops, elz.cycles);
        retain.insert(app.name(), te / tn);
    }
    assert!(retain["sqlite3"] < retain["apache"], "{retain:?}");
}

/// Figure 17's punchline: future-AVX ELZAR lands well under plain ELZAR
/// on every benchmark.
#[test]
fn figure17_slice_future_avx_wins_everywhere() {
    let set = ArtifactSet::new();
    for w in all_workloads().into_iter().take(5) {
        let built = w.build(Scale::Tiny);
        let native = run(&set, &built, w.name(), &Mode::Native, 1);
        let elz = run(&set, &built, w.name(), &Mode::elzar_default(), 1);
        let fut = run(&set, &built, w.name(), &Mode::elzar_future_avx(), 1);
        assert_eq!(elz.output, fut.output, "{}", w.name());
        let oe = normalized_runtime(&elz, &native);
        let of = normalized_runtime(&fut, &native);
        assert!(of < oe, "{}: future {of:.2}x !< elzar {oe:.2}x", w.name());
    }
}

/// Cross-crate determinism: an entire workload pipeline re-run bit-equal.
#[test]
fn whole_pipeline_is_deterministic() {
    let built = by_name("dedup").unwrap().build(Scale::Tiny);
    let artifact = Artifact::build(&built.module, &Mode::elzar_default());
    let a = artifact.run(&built.input, cfg(2));
    let b = artifact.run(&built.input, cfg(2));
    assert_eq!(a.output, b.output);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters.instrs, b.counters.instrs);
}

/// Serving mode end-to-end: one artifact serves the whole stream at
/// both shard counts, scales, and accounts online faults coherently.
#[test]
fn serving_mode_scales_and_accounts_faults() {
    use elzar_suite::elzar_serve::{ServeConfig, Service};
    let mk = |shards: u32| ServeConfig {
        shards,
        requests: 120,
        mean_gap_cycles: 200, // saturating: the queue is the bottleneck
        fault_rate_ppm: 100_000,
        ..Default::default()
    };
    let app = Service::KvA.app(Scale::Tiny);
    let artifact = Artifact::build(&app.module, &Mode::elzar_default());
    let one = artifact.serve(Service::KvA, &app, &mk(1));
    let four = artifact.serve(Service::KvA, &app, &mk(4));
    assert_eq!(one.served + one.rejected, 120);
    assert_eq!(one.injected, four.injected);
    assert_eq!(one.outcomes, four.outcomes);
    assert_eq!(one.table_digest, four.table_digest);
    assert!(
        four.throughput_rps() > one.throughput_rps() * 1.5,
        "sharding must raise saturated throughput: {:.0} -> {:.0}",
        one.throughput_rps(),
        four.throughput_rps()
    );
    assert!(four.quantile_cycles(0.5) <= one.quantile_cycles(0.5));
}
