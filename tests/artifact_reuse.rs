//! Differential tests for the artifact-centric pipeline: building once
//! and reusing the artifact must be *bit-identical* to building fresh
//! for every consumer — batch outcomes and counters, campaign
//! histograms, and the serving KV digest. Plus the build-once
//! accounting the figure harnesses rely on.

use elzar_suite::elzar::{Artifact, ArtifactSet, Mode};
use elzar_suite::elzar_fault::{run_campaign, CampaignConfig};
use elzar_suite::elzar_serve::{serve_program, ServeConfig, Service};
use elzar_suite::elzar_vm::MachineConfig;
use elzar_suite::elzar_workloads::{by_name, Scale};

fn cfg(threads: u32) -> MachineConfig {
    MachineConfig { step_limit: 5_000_000_000, threads, ..MachineConfig::default() }
}

/// Build-once/run-many equals fresh-build-per-run for run outcomes and
/// performance counters, across a thread sweep on one artifact.
#[test]
fn reused_artifact_matches_fresh_builds_for_runs() {
    let built = by_name("histogram").unwrap().build(Scale::Tiny);
    let shared = Artifact::build(&built.module, &Mode::elzar_default());
    for threads in [1u32, 2, 3] {
        let fresh = Artifact::build(&built.module, &Mode::elzar_default());
        let a = shared.run(&built.input, cfg(threads));
        let b = fresh.run(&built.input, cfg(threads));
        assert_eq!(a.outcome, b.outcome, "threads={threads}");
        assert_eq!(a.output, b.output, "threads={threads}");
        assert_eq!(a.cycles, b.cycles, "threads={threads}");
        assert_eq!(a.steps, b.steps, "threads={threads}");
        assert_eq!(a.counters.instrs, b.counters.instrs, "threads={threads}");
        assert_eq!(a.counters.loads, b.counters.loads, "threads={threads}");
        assert_eq!(a.counters.stores, b.counters.stores, "threads={threads}");
        assert_eq!(a.eligible, b.eligible, "threads={threads}");
    }
}

/// Campaign histograms through the cached-golden path equal the
/// classic recompute-everything path, and repeated campaigns on one
/// artifact never recompute the reference execution.
#[test]
fn reused_artifact_matches_fresh_builds_for_campaigns() {
    let built = by_name("linear_regression").unwrap().build(Scale::Tiny);
    let shared = Artifact::build(&built.module, &Mode::elzar_default());
    for seed in [7u64, 8] {
        let ccfg = CampaignConfig { runs: 40, seed, machine: cfg(2), ..Default::default() };
        // Fresh build + full run_campaign (golden recomputed inside).
        let fresh = Artifact::build(&built.module, &Mode::elzar_default());
        let fresh_result = run_campaign(fresh.program(), &built.input, &ccfg);
        // Shared artifact + cached golden run.
        let cached_result = shared.campaign(&built.input, &ccfg);
        assert_eq!(fresh_result.counts, cached_result.counts, "seed={seed}");
        assert_eq!(fresh_result.eligible, cached_result.eligible);
        assert_eq!(fresh_result.golden_cycles, cached_result.golden_cycles);
    }
    assert_eq!(shared.golden_cache_len(), 1, "two seeds, one machine config: one golden run");
}

/// The serving path on a reused artifact produces the same report —
/// including the final resident-table digest — as a fresh build.
#[test]
fn reused_artifact_matches_fresh_builds_for_serving() {
    let app = Service::KvA.app(Scale::Tiny);
    let scfg = ServeConfig { requests: 80, shards: 2, fault_rate_ppm: 150_000, ..Default::default() };
    let shared = Artifact::build(&app.module, &Mode::elzar_default());
    // Serve twice on the shared artifact and once on a fresh build.
    let a = shared.serve(Service::KvA, &app, &scfg);
    let b = shared.serve(Service::KvA, &app, &scfg);
    let fresh = Artifact::build(&app.module, &Mode::elzar_default());
    let c = serve_program(Service::KvA, fresh.program(), &app, &scfg);
    for (label, r) in [("rerun", &b), ("fresh", &c)] {
        assert_eq!(a.served, r.served, "{label}");
        assert_eq!(a.rejected, r.rejected, "{label}");
        assert_eq!(a.injected, r.injected, "{label}");
        assert_eq!(a.outcomes, r.outcomes, "{label}");
        assert_eq!(a.hist, r.hist, "{label}");
        assert_eq!(a.table_digest, r.table_digest, "{label}: serve KV digest diverged");
        assert_eq!(a.makespan_cycles, r.makespan_cycles, "{label}");
    }
}

/// The build-once contract the sweeps assert: an ArtifactSet sweep
/// lowers each (workload, mode) exactly once no matter how many cells
/// consume it. (Lowering is counted via the source closure — every
/// `get_or_build` miss performs exactly one `Artifact::build`; the
/// process-global `elzar::build_count()` is asserted by fig11/fig13,
/// which own their whole process, rather than here where parallel
/// tests also build artifacts.)
#[test]
fn artifact_set_lowers_once_across_a_sweep() {
    use std::cell::Cell;
    let built = by_name("string_match").unwrap().build(Scale::Tiny);
    let set = ArtifactSet::new();
    let sources = Cell::new(0u32);
    let mut outputs = Vec::new();
    for _round in 0..3 {
        for threads in [1u32, 2] {
            for mode in [Mode::NativeNoSimd, Mode::elzar_default()] {
                let a = set.get_or_build("string_match", &mode, || {
                    sources.set(sources.get() + 1);
                    built.module.clone()
                });
                outputs.push(a.run(&built.input, cfg(threads)).output);
            }
        }
    }
    assert_eq!(
        sources.get(),
        2,
        "3 rounds x 2 thread counts x 2 modes must lower exactly twice (once per mode)"
    );
    assert_eq!(set.len(), 2);
    // And every run of a given mode agrees regardless of reuse round.
    assert!(outputs.chunks(4).all(|c| c == &outputs[..4]), "reuse changed results");
}
